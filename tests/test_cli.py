"""The ``cryowire`` CLI."""

import pytest

from repro.experiments.cli import main
from repro.experiments.registry import EXPERIMENTS


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(EXPERIMENTS)


class TestRun:
    def test_runs_a_fast_experiment(self, capsys):
        assert main(["run", "fig20"]) == 0
        out = capsys.readouterr().out
        assert "cryobus" in out
        assert "broadcast" in out

    def test_run_table(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "forwarding_wire_8wide" in out

    def test_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestReport:
    def test_report_prints_anchor_summary(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out
        assert "median |diff|" in out
        assert "CryoSP frequency" in out


class TestFaultToleranceFlags:
    def _register_boom(self, experiment_id):
        from repro.experiments.registry import _SPECS, experiment

        @experiment(experiment_id)
        def boom():
            raise RuntimeError("injected CLI failure")

        return lambda: _SPECS.pop(experiment_id, None)

    def test_failure_without_keep_going_salvages_and_fails(
        self, capsys, tmp_path
    ):
        cleanup = self._register_boom("_cli_boom_strict")
        try:
            rc = main(
                ["run", "_cli_boom_strict", "fig20",
                 "--cache-dir", str(tmp_path / "c")]
            )
            assert rc == 1
            captured = capsys.readouterr()
            assert "cryobus" in captured.out  # fig20 still emitted
            assert "experiment(s) failed" in captured.err
        finally:
            cleanup()

    def test_keep_going_reports_failures_on_stderr(self, capsys, tmp_path):
        cleanup = self._register_boom("_cli_boom_keep")
        try:
            rc = main(
                ["run", "_cli_boom_keep", "fig20", "--keep-going",
                 "--cache-dir", str(tmp_path / "c")]
            )
            assert rc == 1
            captured = capsys.readouterr()
            assert "cryobus" in captured.out
            assert "failed: _cli_boom_keep" in captured.err
        finally:
            cleanup()

    def test_resume_skips_completed(self, capsys, tmp_path):
        cache_flags = ["--cache-dir", str(tmp_path / "c")]
        assert main(["run", "fig20", "table1"] + cache_flags) == 0
        assert main(["run", "fig20", "table1", "--resume"] + cache_flags) == 0
        capsys.readouterr()
        assert main(["stats"] + cache_flags) == 0
        assert "skipped 2" in capsys.readouterr().out

    def test_stats_reports_cache_and_quarantine(self, capsys, tmp_path):
        cache_flags = ["--cache-dir", str(tmp_path / "c")]
        assert main(["run", "fig20"] + cache_flags) == 0
        capsys.readouterr()
        assert main(["stats"] + cache_flags) == 0
        out = capsys.readouterr().out
        assert "retries 0" in out
        assert "cache: 1 entries, 0 quarantined" in out

    def test_rejects_negative_retries_and_timeout(self):
        with pytest.raises(SystemExit):
            main(["run", "fig20", "--retries", "-1"])
        with pytest.raises(SystemExit):
            main(["run", "fig20", "--timeout", "-2"])


class TestShardFlags:
    def test_run_with_shards_writes_sharded_manifest(self, capsys, tmp_path):
        cache_flags = ["--cache-dir", str(tmp_path / "c")]
        assert main(["run", "fig20", "table1", "--shards", "2"] + cache_flags) == 0
        capsys.readouterr()
        assert main(["stats"] + cache_flags) == 0
        out = capsys.readouterr().out
        assert "shards=2" in out
        assert "shard" in out

    def test_sharded_resume_skips_completed(self, capsys, tmp_path):
        cache_flags = ["--cache-dir", str(tmp_path / "c")]
        assert main(["run", "fig20", "table1", "--shards", "2"] + cache_flags) == 0
        assert (
            main(["run", "fig20", "table1", "--shards", "2", "--resume"]
                 + cache_flags)
            == 0
        )
        capsys.readouterr()
        assert main(["stats"] + cache_flags) == 0
        assert "skipped 2" in capsys.readouterr().out

    def test_rejects_negative_shards(self):
        with pytest.raises(SystemExit):
            main(["run", "fig20", "--shards", "-1"])
        with pytest.raises(SystemExit):
            main(["run", "fig20", "--shard-timeout-s", "-2"])


class TestResumeAfterFailures:
    def test_resume_after_keep_going_timeout_reruns_only_the_loser(
        self, capsys, tmp_path
    ):
        """A --keep-going run that ends with a timeout record must be
        resumable: the timed-out experiment re-runs, the completed one
        is skipped."""
        import time as _time

        from repro.experiments.registry import _SPECS, experiment

        flag = tmp_path / "be-slow"
        flag.write_text("1")

        @experiment("_cli_resume_tmo")
        def _sleeper():
            if flag.exists():
                _time.sleep(5.0)
            from repro.experiments.base import ExperimentResult

            result = ExperimentResult("_cli_resume_tmo", "slow probe", ("x",))
            result.add_row(1.0)
            return result

        cache_flags = ["--cache-dir", str(tmp_path / "c")]
        try:
            rc = main(
                ["run", "_cli_resume_tmo", "fig20", "--timeout", "0.3",
                 "--keep-going"] + cache_flags
            )
            assert rc == 1
            err = capsys.readouterr().err
            assert "timeout" in err

            flag.unlink()  # the flake clears; the resume must finish the job
            rc = main(
                ["run", "_cli_resume_tmo", "fig20", "--resume"] + cache_flags
            )
            assert rc == 0
            capsys.readouterr()
            assert main(["stats"] + cache_flags) == 0
            out = capsys.readouterr().out
            assert "skipped 1" in out  # fig20 kept, the loser re-ran
            assert "timeouts 0" in out
        finally:
            _SPECS.pop("_cli_resume_tmo", None)
