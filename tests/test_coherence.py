"""Coherence protocol engines: directory MESI vs snooping MSI."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.coherence import (
    DirectoryProtocol,
    MODIFIED,
    SHARED,
    SnoopingProtocol,
)

PROTOCOLS = (DirectoryProtocol, SnoopingProtocol)


@pytest.fixture(params=PROTOCOLS, ids=["directory", "snoop"])
def protocol(request):
    return request.param(n_cores=4)


LINE = 0x4000


class TestBasicOperation:
    def test_read_installs_shared(self, protocol):
        protocol.read(0, LINE)
        assert protocol.holders(LINE) == {0: SHARED}

    def test_write_installs_modified(self, protocol):
        protocol.write(0, LINE)
        assert protocol.holders(LINE) == {0: MODIFIED}

    def test_second_read_is_hit(self, protocol):
        protocol.read(0, LINE)
        before = protocol.stats.hits
        protocol.read(0, LINE)
        assert protocol.stats.hits == before + 1

    def test_write_invalidates_readers(self, protocol):
        protocol.read(0, LINE)
        protocol.read(1, LINE)
        protocol.write(2, LINE)
        holders = protocol.holders(LINE)
        assert holders == {2: MODIFIED}
        assert protocol.stats.invalidations >= 2

    def test_read_downgrades_writer(self, protocol):
        protocol.write(0, LINE)
        protocol.read(1, LINE)
        holders = protocol.holders(LINE)
        assert holders[0] == SHARED and holders[1] == SHARED
        assert protocol.stats.cache_to_cache == 1

    def test_data_value_invariant(self, protocol):
        """A read observes the most recent write's version."""
        v1 = protocol.write(0, LINE)
        assert protocol.read(1, LINE) == v1
        v2 = protocol.write(2, LINE)
        assert v2 > v1
        assert protocol.read(3, LINE) == v2

    def test_write_hit_in_modified_state(self, protocol):
        protocol.write(0, LINE)
        before = protocol.stats.traversals
        protocol.write(0, LINE)
        assert protocol.stats.traversals == before  # silent upgrade

    def test_validates_core_index(self, protocol):
        with pytest.raises(ValueError):
            protocol.read(9, LINE)

    def test_validates_address(self, protocol):
        with pytest.raises(ValueError):
            protocol.write(0, -64)


class TestProtocolCosts:
    def test_directory_pays_indirection_for_dirty_remote(self):
        directory = DirectoryProtocol(4)
        snoop = SnoopingProtocol(4)
        for protocol in (directory, snoop):
            protocol.write(0, LINE)
            protocol.stats = type(protocol.stats)()  # reset counters
            protocol.read(1, LINE)
        # Directory: requestor->home, home->owner, owner->requestor.
        assert directory.stats.traversals == 3
        # Snoop: request broadcast + data response.
        assert snoop.stats.traversals == 2

    def test_snoop_invalidation_is_one_broadcast(self):
        snoop = SnoopingProtocol(8)
        for core in range(8):
            snoop.read(core, LINE)
        snoop.stats = type(snoop.stats)()
        snoop.write(0, LINE)
        assert snoop.stats.traversals == 2  # BusRdX + data

    def test_directory_invalidations_fan_out(self):
        directory = DirectoryProtocol(8)
        for core in range(8):
            directory.read(core, LINE)
        directory.stats = type(directory.stats)()
        directory.write(0, LINE)
        assert directory.stats.invalidations == 7
        assert directory.stats.traversals >= 7

    def test_stats_merge(self):
        a = DirectoryProtocol(2)
        a.read(0, LINE)
        snapshot = a.stats
        other = type(snapshot)(reads=2, traversals=5)
        snapshot.merge(other)
        assert snapshot.reads == 3
        assert snapshot.traversals >= 5


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["read", "write"]),
            st.integers(0, 3),          # core
            st.integers(0, 7),           # line index
        ),
        min_size=1,
        max_size=60,
    ),
    protocol_cls=st.sampled_from(PROTOCOLS),
)
def test_swmr_invariant_under_random_streams(ops, protocol_cls):
    """Single-writer/multiple-reader holds for arbitrary interleavings."""
    protocol = protocol_cls(n_cores=4)
    touched = set()
    for op, core, line_idx in ops:
        address = line_idx * 64
        touched.add(address)
        getattr(protocol, op)(core, address)
        protocol.check_invariants(address)
    for address in touched:
        protocol.check_invariants(address)


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["read", "write"]),
            st.integers(0, 3),
            st.integers(0, 3),
        ),
        min_size=1,
        max_size=40,
    ),
    protocol_cls=st.sampled_from(PROTOCOLS),
)
def test_reads_see_latest_version(ops, protocol_cls):
    """Data-value invariant: every read returns the last written version."""
    protocol = protocol_cls(n_cores=4)
    latest = {}
    for op, core, line_idx in ops:
        address = line_idx * 64
        if op == "write":
            latest[address] = protocol.write(core, address)
        else:
            version = protocol.read(core, address)
            assert version == latest.get(address, 0)
