"""TechContext under threads, and the LRU cap a long-running owner needs.

The serve layer shares one process-global context across worker
threads; these tests pin the two properties that makes safe:

* concurrent lookups never tear the store or the counters — every
  lookup is accounted exactly once, and warm lookups hand back one
  shared object (store-wins, no single-flight);
* with ``max_entries`` set, the store behaves as a strict LRU whose
  size never exceeds the cap, even mid-race.
"""

from __future__ import annotations

import threading

import pytest

from repro.tech import OperatingPoint, TechContext, cryo_mosfet, use_context
from repro.tech.mosfet import FREEPDK45_CARD


class TestThreadSafety:
    def test_counters_account_every_lookup(self):
        """N threads x M lookups over a small key set: hits + misses must
        equal the exact number of memo() calls, and every key must end up
        stored once."""
        context = TechContext()
        n_threads, n_rounds, n_keys = 8, 200, 10
        barrier = threading.Barrier(n_threads)

        def worker(seed):
            barrier.wait()
            for round_i in range(n_rounds):
                key = ("stress", (seed + round_i) % n_keys)
                context.memo(key, lambda k=key: {"value": k[1]})

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = context.stats()
        assert stats.lookups == n_threads * n_rounds
        assert stats.entries == n_keys
        # Misses can exceed n_keys (no single-flight: concurrent misses
        # both compute), but every lookup is either a hit or a miss.
        assert stats.misses >= n_keys
        assert stats.hits == stats.lookups - stats.misses

    def test_store_wins_and_warm_lookups_share_one_object(self):
        """Even when two threads race the same cold key, every caller
        receives the single stored object."""
        context = TechContext()
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        received = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            value = context.memo(("race", 1), lambda: object())
            with lock:
                received.append(value)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(received) == n_threads
        first = received[0]
        assert all(value is first for value in received)
        assert context.memo(("race", 1), lambda: object()) is first

    def test_model_kernels_through_one_shared_context(self):
        """The real serve-shaped workload: threads pricing overlapping
        operating points through the model layer must agree bit-for-bit
        with a quiet single-threaded evaluation."""
        points = [OperatingPoint.at(77.0 + 30.0 * i, 0.7 + 0.05 * i, 0.25) for i in range(5)]
        with use_context(TechContext()):
            mosfet = cryo_mosfet(FREEPDK45_CARD)
            expected = [mosfet.gate_delay_factor(op) for op in points]

        shared = TechContext()
        results = {}
        lock = threading.Lock()
        barrier = threading.Barrier(6)

        def worker(worker_i):
            barrier.wait()
            local = []
            for op in points:
                local.append(mosfet_shared.gate_delay_factor(op))
            with lock:
                results[worker_i] = local

        with use_context(shared):
            mosfet_shared = cryo_mosfet(FREEPDK45_CARD)
            threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert len(results) == 6
        for local in results.values():
            assert local == expected
        assert shared.stats().hits > 0


class TestLRUEviction:
    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            TechContext(max_entries=0)

    def test_unbounded_by_default(self):
        context = TechContext()
        for i in range(100):
            context.memo(("fam", i), lambda i=i: i)
        stats = context.stats()
        assert stats.entries == 100
        assert stats.evictions == 0
        assert stats.max_entries is None

    def test_cap_evicts_least_recently_used(self):
        context = TechContext(max_entries=3)
        for i in range(3):
            context.memo(("fam", i), lambda i=i: i)
        context.memo(("fam", 3), lambda: 3)  # evicts key 0
        assert len(context) == 3
        sentinel = object()
        # Key 0 is gone (recomputes), keys 1-3 are warm.
        assert context.memo(("fam", 0), lambda: sentinel) is sentinel
        assert context.stats().evictions == 2  # key 0, then key 1 for 0's return

    def test_hit_refreshes_recency(self):
        context = TechContext(max_entries=2)
        context.memo(("fam", "a"), lambda: "a")
        context.memo(("fam", "b"), lambda: "b")
        context.memo(("fam", "a"), lambda: "stale")  # hit: refresh "a"
        context.memo(("fam", "c"), lambda: "c")  # evicts "b", not "a"
        assert context.memo(("fam", "a"), lambda: "recomputed") == "a"
        assert context.memo(("fam", "b"), lambda: "recomputed") == "recomputed"

    def test_eviction_counters_per_family_roll_up(self):
        context = TechContext(max_entries=2)
        for i in range(5):
            context.memo(("alpha", i), lambda i=i: i)
        for i in range(2):
            context.memo(("beta", i), lambda i=i: i)
        stats = context.stats()
        assert stats.entries == 2
        assert stats.evictions == 5
        assert stats.max_entries == 2

    def test_clear_resets_store_and_counters(self):
        context = TechContext(max_entries=2)
        for i in range(4):
            context.memo(("fam", i), lambda i=i: i)
        context.clear()
        stats = context.stats()
        assert (stats.hits, stats.misses, stats.entries, stats.evictions) == (0, 0, 0, 0)

    def test_cap_holds_under_concurrent_misses(self):
        """The store must never exceed the cap, even while many threads
        miss simultaneously; the counters still account every lookup."""
        cap = 16
        context = TechContext(max_entries=cap)
        n_threads, n_rounds = 8, 300
        barrier = threading.Barrier(n_threads)
        overflows = []

        def worker(seed):
            barrier.wait()
            for round_i in range(n_rounds):
                key = ("lru", (seed * 7 + round_i) % 64)
                context.memo(key, lambda k=key: k)
                size = len(context)
                if size > cap:
                    overflows.append(size)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not overflows, f"store exceeded cap: {overflows[:5]}"
        stats = context.stats()
        assert stats.lookups == n_threads * n_rounds
        assert stats.entries <= cap
        assert stats.evictions > 0
