"""Core package: superpipelining, IPC model, voltage optimiser, Table 3."""

import pytest

from repro.core.cryosp import CryoSPDesigner
from repro.core.ipc import IPCModel
from repro.core.voltage import VoltageOptimizer
from repro.pipeline.config import (
    CRYO_CORE_CONFIG,
    OP_300K_NOMINAL,
    OP_77K_NOMINAL,
    SKYLAKE_CONFIG,
)
from repro.pipeline.model import PipelineModel
from repro.pipeline.stages import StageKind, SUPERPIPELINED_STAGES
from repro.tech.constants import T_LN2
from repro.workloads.profiles import PARSEC_2_1


@pytest.fixture(scope="module")
def table3():
    return CryoSPDesigner().derive()


class TestSuperpipelinePlan:
    def test_plans_the_papers_three_stages(self, transform):
        plan = transform.plan(SKYLAKE_CONFIG, OP_77K_NOMINAL)
        assert set(plan.split_stage_names) == set(SUPERPIPELINED_STAGES)

    def test_fetch2_is_residual(self, transform):
        plan = transform.plan(SKYLAKE_CONFIG, OP_77K_NOMINAL)
        assert "fetch2" in plan.residual_stage_names

    def test_noop_at_300k(self, transform):
        """Frontend superpipelining is meaningless at room temperature."""
        plan = transform.plan(SKYLAKE_CONFIG, OP_300K_NOMINAL)
        assert plan.is_noop

    def test_adds_three_stages(self, transform):
        plan = transform.plan(SKYLAKE_CONFIG, OP_77K_NOMINAL)
        assert plan.extra_stages == 3
        assert len(plan.stages) == 13 + 3

    def test_children_are_pipelinable_leaves(self, transform):
        plan = transform.plan(SKYLAKE_CONFIG, OP_77K_NOMINAL)
        for spec in plan.stages:
            if "." in spec.name:
                assert spec.pipelinable and spec.split is None

    def test_children_inherit_parent_kind(self, transform):
        plan = transform.plan(SKYLAKE_CONFIG, OP_77K_NOMINAL)
        for spec in plan.stages:
            if spec.name.startswith("fetch1."):
                assert spec.kind is StageKind.FRONTEND


class TestSuperpipelineFrequency:
    def test_61_percent_gain_over_300k(self, transform):
        _, _, after = transform.apply(SKYLAKE_CONFIG, OP_77K_NOMINAL)
        assert after.frequency_ghz == pytest.approx(6.4, rel=0.05)

    def test_gain_over_77k_baseline(self, transform):
        gain, _, _ = transform.frequency_gain(SKYLAKE_CONFIG, OP_77K_NOMINAL)
        assert 1.25 < gain < 1.45

    def test_split_stages_meet_target(self, transform):
        plan, _, after = transform.apply(SKYLAKE_CONFIG, OP_77K_NOMINAL)
        for stage in after.stages:
            if "." in stage.name:
                assert stage.total_ps <= plan.target_latency_ps * 1.05


class TestIPCModel:
    def test_superpipelining_cost_anchor(self):
        """Table 3: ~4.2 % IPC loss from the three extra stages."""
        ipc = IPCModel()
        relative = ipc.mean_relative_ipc(SKYLAKE_CONFIG.deepened(3), SKYLAKE_CONFIG)
        assert relative == pytest.approx(0.958, abs=0.015)

    def test_chp_ipc_anchor(self):
        relative = IPCModel().mean_relative_ipc(CRYO_CORE_CONFIG, SKYLAKE_CONFIG)
        assert relative == pytest.approx(0.93, abs=0.015)

    def test_cryosp_ipc_anchor(self):
        relative = IPCModel().mean_relative_ipc(
            CRYO_CORE_CONFIG.deepened(3), SKYLAKE_CONFIG
        )
        assert relative == pytest.approx(0.90, abs=0.015)

    def test_deeper_pipeline_never_raises_ipc(self):
        ipc = IPCModel()
        for profile in PARSEC_2_1:
            assert ipc.core_ipc(SKYLAKE_CONFIG.deepened(3), profile) <= ipc.core_ipc(
                SKYLAKE_CONFIG, profile
            )

    def test_branchy_workloads_pay_more_for_depth(self):
        ipc = IPCModel()
        by_restarts = sorted(PARSEC_2_1, key=lambda p: p.restarts_pki)
        tame, branchy = by_restarts[0], by_restarts[-1]
        deep = SKYLAKE_CONFIG.deepened(3)

        def cost(profile):
            return 1 - ipc.core_ipc(deep, profile) / ipc.core_ipc(SKYLAKE_CONFIG, profile)

        assert cost(branchy) > cost(tame)

    def test_empty_profile_list_raises(self):
        with pytest.raises(ValueError):
            IPCModel().mean_relative_ipc(SKYLAKE_CONFIG, SKYLAKE_CONFIG, profiles=())


class TestVoltageOptimizer:
    def test_respects_power_budget(self):
        optimizer = VoltageOptimizer(PipelineModel())
        result = optimizer.optimize(CRYO_CORE_CONFIG, T_LN2, total_power_budget=1.0)
        assert result.power.total_rel <= 1.0

    def test_tighter_budget_means_lower_frequency(self):
        optimizer = VoltageOptimizer(PipelineModel())
        loose = optimizer.optimize(CRYO_CORE_CONFIG, T_LN2, 1.0)
        tight = optimizer.optimize(CRYO_CORE_CONFIG, T_LN2, 0.5)
        assert tight.frequency_ghz <= loose.frequency_ghz

    def test_rejects_nonpositive_budget(self):
        optimizer = VoltageOptimizer(PipelineModel())
        with pytest.raises(ValueError):
            optimizer.optimize(CRYO_CORE_CONFIG, T_LN2, 0.0)

    def test_infeasible_budget_raises(self):
        optimizer = VoltageOptimizer(PipelineModel())
        with pytest.raises(RuntimeError, match="no feasible"):
            optimizer.optimize(CRYO_CORE_CONFIG, T_LN2, 1e-6)

    def test_vth_floor_honoured(self):
        optimizer = VoltageOptimizer(PipelineModel())
        result = optimizer.optimize(CRYO_CORE_CONFIG, T_LN2, 1.0)
        assert result.vth_v >= 0.25 - 1e-9


class TestTable3Chain:
    def test_five_designs_in_order(self, table3):
        names = [d.name for d in table3.designs()]
        assert names == [
            "300K Baseline",
            "77K Superpipeline",
            "77K Superpipeline+CryoCore",
            "77K CryoSP",
            "CHP-core",
        ]

    def test_baseline_anchors(self, table3):
        base = table3.baseline_300k
        assert base.frequency_ghz == pytest.approx(4.0, rel=0.02)
        assert base.power.total_rel == pytest.approx(1.0, abs=0.02)
        assert base.pipeline_depth == 14

    def test_superpipeline_anchors(self, table3):
        sp = table3.superpipeline_77k
        assert sp.frequency_ghz == pytest.approx(6.4, rel=0.05)
        assert sp.pipeline_depth == 17
        assert sp.power.device_rel == pytest.approx(1.61, rel=0.08)
        assert sp.power.total_rel == pytest.approx(17.15, rel=0.08)

    def test_cryocore_sizing_anchors(self, table3):
        sized = table3.superpipeline_cryocore_77k
        assert sized.config.issue_width == 4
        assert sized.power.device_rel == pytest.approx(0.3575, rel=0.10)

    def test_cryosp_anchors(self, table3):
        cryosp = table3.cryosp
        assert cryosp.frequency_ghz == pytest.approx(7.84, rel=0.05)
        assert cryosp.power.total_rel <= 1.0
        assert cryosp.operating_point.vdd_v == pytest.approx(0.64, abs=0.08)
        assert cryosp.operating_point.vth_v == pytest.approx(0.25, abs=0.01)

    def test_chp_anchors(self, table3):
        chp = table3.chp_core
        assert chp.frequency_ghz == pytest.approx(6.1, rel=0.05)
        assert chp.power.total_rel <= 1.0
        assert chp.pipeline_depth == 14

    def test_cryosp_28_percent_over_chp(self, table3):
        ratio = table3.cryosp.frequency_ghz / table3.chp_core.frequency_ghz
        assert ratio == pytest.approx(1.285, abs=0.07)

    def test_performance_proxy_improves_along_chain(self, table3):
        assert (
            table3.cryosp.performance_proxy
            > table3.chp_core.performance_proxy
            > table3.baseline_300k.performance_proxy
        )
