"""Cross-module property tests: invariants that must hold end to end."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cacti import CactiModel
from repro.memory.cll_dram import CllDramModel
from repro.pipeline.config import CoreConfig, OperatingPoint, SKYLAKE_CONFIG
from repro.pipeline.model import PipelineModel
from repro.power.mcpat import CorePowerModel
from repro.system.config import CHP_77K_CRYOBUS, CHP_77K_MESH
from repro.system.multicore import MulticoreSystem
from repro.workloads.profiles import PARSEC_2_1, WorkloadProfile

temperatures = st.floats(min_value=77.0, max_value=300.0)


@pytest.fixture(scope="module")
def model():
    return PipelineModel()


class TestThermodynamicMonotonicity:
    """Nothing in this repository may get slower when cooled."""

    @settings(max_examples=15, deadline=None)
    @given(t_cold=temperatures, delta=st.floats(min_value=1.0, max_value=200.0))
    def test_pipeline_frequency(self, model, t_cold, delta):
        t_warm = min(t_cold + delta, 300.0)
        op_cold = OperatingPoint("c", t_cold, 1.25, 0.47)
        op_warm = OperatingPoint("w", t_warm, 1.25, 0.47)
        cold = model.evaluate(SKYLAKE_CONFIG, op_cold).frequency_ghz
        warm = model.evaluate(SKYLAKE_CONFIG, op_warm).frequency_ghz
        assert cold >= warm - 1e-9

    @settings(max_examples=10, deadline=None)
    @given(t_cold=temperatures)
    def test_cache_access(self, t_cold):
        cacti = CactiModel()
        assert cacti.optimize(256, t_cold).access_ns <= (
            cacti.optimize(256, 300.0).access_ns + 1e-12
        )

    @settings(max_examples=10, deadline=None)
    @given(t_cold=temperatures)
    def test_dram_access(self, t_cold):
        dram = CllDramModel()
        assert dram.timing(t_cold).access_ns <= dram.timing(300.0).access_ns + 1e-12


class TestStructuralMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(width=st.sampled_from([2, 4, 8]))
    def test_narrower_cores_clock_no_slower(self, model, width):
        """Smaller structures mean shorter wires and lighter logic."""
        config = CoreConfig(
            name=f"w{width}",
            issue_width=width,
            pipeline_depth=14,
            load_queue=72,
            store_queue=56,
            issue_queue=97,
            rob_size=224,
            int_regs=180,
            fp_regs=168,
        )
        op = OperatingPoint("77K", 77.0, 1.25, 0.47)
        narrow = model.evaluate(config, op).frequency_ghz
        wide = model.evaluate(SKYLAKE_CONFIG, op).frequency_ghz
        assert narrow >= wide - 1e-9

    @settings(max_examples=10, deadline=None)
    @given(
        vdd=st.floats(min_value=0.7, max_value=1.25),
        freq=st.floats(min_value=1.0, max_value=8.0),
    )
    def test_power_monotone_in_vdd(self, vdd, freq):
        power = CorePowerModel()
        op_low = OperatingPoint("lo", 77.0, vdd, 0.25)
        op_high = OperatingPoint("hi", 77.0, min(vdd + 0.1, 1.35), 0.25)
        low = power.report(SKYLAKE_CONFIG, op_low, freq).device_rel
        high = power.report(SKYLAKE_CONFIG, op_high, freq).device_rel
        assert high >= low


class TestSystemModelSanity:
    @settings(max_examples=10, deadline=None)
    @given(profile=st.sampled_from(PARSEC_2_1))
    def test_snooping_bus_never_loses_to_mesh(self, profile):
        """At PARSEC rates CryoBus dominates the 77 K mesh everywhere."""
        mesh = MulticoreSystem(CHP_77K_MESH).evaluate(profile)
        bus = MulticoreSystem(CHP_77K_CRYOBUS).evaluate(profile)
        assert bus.performance >= mesh.performance

    @settings(max_examples=10, deadline=None)
    @given(
        profile=st.sampled_from(PARSEC_2_1),
        scale=st.floats(min_value=1.05, max_value=2.0),
    )
    def test_more_misses_never_help(self, profile, scale):
        heavier = WorkloadProfile(
            name=profile.name + "+",
            suite=profile.suite,
            base_cpi=profile.base_cpi,
            ilp=profile.ilp,
            restarts_pki=profile.restarts_pki,
            l1d_mpki=profile.l1d_mpki * scale,
            l2_mpki=profile.l2_mpki * scale,
            l3_mpki=profile.l3_mpki * scale,
            barrier_pki=profile.barrier_pki,
            lock_pki=profile.lock_pki,
            sharing_fraction=profile.sharing_fraction,
        )
        system = MulticoreSystem(CHP_77K_MESH)
        assert (
            system.evaluate(heavier).performance
            <= system.evaluate(profile).performance + 1e-9
        )

    @settings(max_examples=8, deadline=None)
    @given(profile=st.sampled_from(PARSEC_2_1))
    def test_injection_rate_consistent_with_ipc(self, profile):
        result = MulticoreSystem(CHP_77K_MESH).evaluate(profile)
        expected = profile.l2_mpki / 1000.0 * result.ipc
        assert result.injection_rate_per_core == pytest.approx(expected, rel=0.15)
