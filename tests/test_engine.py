"""The execution engine: result round-trips, the content-addressed
cache, parallel-vs-serial equivalence and the new CLI surface."""

import importlib.util
import json
import logging
import os
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.cache import ResultCache
from repro.experiments.cli import main
from repro.experiments.engine import (
    DEFAULT_TIMEOUT_S,
    ExecutionEngine,
    ExperimentExecutionError,
    LeakedThreadLimit,
    RunManifest,
    RunRecord,
    check_leak_budget,
    leaked_thread_count,
    load_last_manifest,
    run_experiments,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentSpec,
    _SPECS,
    experiment,
    get_spec,
    run_experiment,
)


def _sample_result() -> ExperimentResult:
    result = ExperimentResult(
        "x", "title", ("k", "v", "flag"), paper_reference={"anchor": 1.5}
    )
    result.add_row("one", 2.5, True)
    result.add_row("two", 3, False)
    result.notes = "a note"
    return result


class TestResultRoundTrip:
    def test_from_json_inverts_to_json(self):
        result = _sample_result()
        assert ExperimentResult.from_json(result.to_json()) == result

    def test_from_dict_normalizes_lists_to_tuples(self):
        result = _sample_result()
        data = json.loads(result.to_json())  # rows decode as lists
        assert all(isinstance(row, list) for row in data["rows"])
        revived = ExperimentResult.from_dict(data)
        assert all(isinstance(row, tuple) for row in revived.rows)
        assert isinstance(revived.headers, tuple)
        assert revived == result

    def test_to_dict_detaches_containers(self):
        result = _sample_result()
        data = result.to_dict()
        data["rows"].append(["three", 4, True])
        data["paper_reference"]["other"] = 9.0
        assert len(result.rows) == 2
        assert result.paper_reference == {"anchor": 1.5}

    def test_real_experiment_round_trips(self):
        result = run_experiment("fig20")
        assert ExperimentResult.from_json(result.to_json()) == result


class TestDescriptiveKeyErrors:
    def test_row_by_missing_header(self):
        result = _sample_result()
        with pytest.raises(KeyError, match="no column 'nope'"):
            result.row_by("nope", "one")

    def test_lookup_missing_key_header(self):
        result = _sample_result()
        with pytest.raises(KeyError, match="no column 'nope'"):
            result.lookup("nope", "one", "v")

    def test_lookup_missing_value_header(self):
        result = _sample_result()
        with pytest.raises(KeyError, match="no column 'nope'"):
            result.lookup("k", "one", "nope")


def _spec_from_file(path: Path) -> ExperimentSpec:
    spec = importlib.util.spec_from_file_location("fake_experiment_mod", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return ExperimentSpec("fake", module.run)


FAKE_MODULE = """\
from repro.experiments.base import ExperimentResult


def run(scale=1.0):
    result = ExperimentResult("fake", "fake", ("k", "v"))
    result.add_row("one", scale)
    return result
"""


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = _sample_result()
        cache.put("abc123", result)
        assert cache.get("abc123") == result
        assert cache.get("missing") is None
        assert cache.entry_count() == 1

    def test_corrupt_entry_is_a_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("abc123", _sample_result())
        (tmp_path / "cache" / "abc123.json").write_text("{not json")
        assert cache.get("abc123") is None
        # The bad entry was moved aside, not left to fail on every read.
        assert not (tmp_path / "cache" / "abc123.json").exists()
        assert (tmp_path / "cache" / "corrupt" / "abc123.json").exists()
        assert cache.quarantined_count() == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put("abc123", _sample_result())
        path.write_bytes(path.read_bytes()[:25])  # torn write survivor
        assert cache.get("abc123") is None
        assert cache.quarantined_count() == 1

    def test_tampered_payload_fails_digest_check(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put("abc123", _sample_result())
        payload = json.loads(path.read_text())
        payload["result"]["rows"][0][1] = 99.0  # silent bit-rot / hand edit
        path.write_text(json.dumps(payload))
        assert cache.get("abc123") is None
        assert cache.quarantined_count() == 1

    def test_old_schema_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = tmp_path / "cache" / "abc123.json"
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"result": _sample_result().to_dict()}))
        assert cache.get("abc123") is None
        assert cache.quarantined_count() == 1

    def test_key_changes_with_kwargs(self, tmp_path):
        source = tmp_path / "fake_experiment.py"
        source.write_text(FAKE_MODULE)
        spec = _spec_from_file(source)
        cache = ResultCache(tmp_path / "cache")
        base = cache.key_for(spec, {})
        assert cache.key_for(spec, {}) == base  # stable
        assert cache.key_for(spec, {"scale": 2.0}) != base
        assert cache.key_for(spec, {"scale": 3.0}) != cache.key_for(
            spec, {"scale": 2.0}
        )

    def test_key_changes_when_source_changes(self, tmp_path):
        source = tmp_path / "fake_experiment.py"
        source.write_text(FAKE_MODULE)
        spec = _spec_from_file(source)
        before = ResultCache(tmp_path / "cache").key_for(spec, {})
        source.write_text(FAKE_MODULE + "\n# edited\n")
        after = ResultCache(tmp_path / "cache").key_for(spec, {})
        assert before != after

    def test_unpicklable_kwargs_are_uncacheable(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.is_cacheable({"n_cycles": 100, "rates": (0.1, 0.2)})
        assert not cache.is_cacheable({"obj": object()})

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("a", _sample_result())
        cache.put("b", _sample_result())
        assert cache.clear() == 2
        assert cache.entry_count() == 0

    def test_clear_purges_quarantine(self, tmp_path):
        """Quarantined corpses must not outlive ``clear`` — a cleared
        cache that still carries corrupt/ files reports stale
        ``quarantined_count`` forever."""
        cache = ResultCache(tmp_path / "cache")
        cache.put("good", _sample_result())
        cache.put("bad", _sample_result())
        (tmp_path / "cache" / "bad.json").write_text("{not json")
        assert cache.get("bad") is None  # quarantines bad.json
        assert cache.quarantined_count() == 1
        assert cache.clear() == 2  # the live entry plus the quarantined one
        assert cache.entry_count() == 0
        assert cache.quarantined_count() == 0
        assert not list((tmp_path / "cache" / "corrupt").glob("*.json"))

    def test_put_fsyncs_before_publishing(self, tmp_path, monkeypatch):
        """``put`` must flush to disk *before* the atomic rename makes
        the entry visible — otherwise a power cut can publish a torn
        entry under its final name."""
        events = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            events.append("fsync")
            return real_fsync(fd)

        def spy_replace(src, dst):
            events.append("replace")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        cache = ResultCache(tmp_path / "cache")
        cache.put("abc123", _sample_result())
        assert "fsync" in events and "replace" in events
        assert events.index("fsync") < events.index("replace")


class TestEngine:
    def test_cold_then_warm(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
        cold = engine.run(["fig20", "table1"])
        assert {r.status for r in cold.manifest.records} == {"miss"}
        warm = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache").run(
            ["fig20", "table1"]
        )
        assert {r.status for r in warm.manifest.records} == {"hit"}
        assert warm.manifest.hit_rate == 1.0
        for eid in ("fig20", "table1"):
            assert warm.results[eid].to_text() == cold.results[eid].to_text()

    def test_kwargs_key_the_cache(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
        engine.run(["fig10"], kwargs_by_id={"fig10": {"length_mm": 5.0}})
        other = engine.run(["fig10"], kwargs_by_id={"fig10": {"length_mm": 4.0}})
        assert other.manifest.records[0].status == "miss"
        again = engine.run(["fig10"], kwargs_by_id={"fig10": {"length_mm": 5.0}})
        assert again.manifest.records[0].status == "hit"

    def test_no_cache_mode(self, tmp_path):
        engine = ExecutionEngine(
            jobs=1, use_cache=False, cache_dir=tmp_path / "cache"
        )
        first = engine.run(["fig20"])
        second = engine.run(["fig20"])
        statuses = [r.status for r in first.manifest.records + second.manifest.records]
        assert statuses == ["uncached", "uncached"]
        assert engine.cache.entry_count() == 0

    def test_no_cache_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CRYOWIRE_NO_CACHE", "1")
        engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
        assert not engine.use_cache

    def test_manifest_written_and_loadable(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
        outcome = engine.run(["fig20"])
        loaded = RunManifest.load(engine.cache.manifest_path)
        assert loaded.to_dict() == outcome.manifest.to_dict()
        assert "fig20" in loaded.summary()

    def test_schedule_puts_slow_experiments_first(self):
        order = ExecutionEngine.schedule(["fig02", "fig18", "table1", "fig21"])
        assert order == ["fig18", "fig21", "fig02", "table1"]
        assert get_spec("fig18").cost == "slow"
        assert get_spec("fig02").cost == "fast"

    def test_failures_recorded_then_raised(self, tmp_path):
        @experiment("_engine_test_boom")
        def boom():
            raise RuntimeError("kaput")

        try:
            engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
            with pytest.raises(ExperimentExecutionError, match="kaput"):
                engine.run(["_engine_test_boom", "fig20"])
            manifest = RunManifest.load(engine.cache.manifest_path)
            by_id = {r.experiment_id: r.status for r in manifest.records}
            assert by_id["_engine_test_boom"] == "error"
            assert by_id["fig20"] == "miss"  # failure does not stop the rest
        finally:
            _SPECS.pop("_engine_test_boom", None)

    def test_error_attaches_partial_outcome(self, tmp_path):
        @experiment("_engine_test_salvage_boom")
        def boom():
            raise RuntimeError("kaput")

        try:
            engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
            with pytest.raises(ExperimentExecutionError) as excinfo:
                engine.run(["_engine_test_salvage_boom", "fig20"])
            outcome = excinfo.value.outcome
            assert outcome is not None
            # Completed work is salvageable from the exception.
            assert outcome.results["fig20"].to_text() == run_experiment(
                "fig20"
            ).to_text()
            assert [r.experiment_id for r in outcome.failures] == [
                "_engine_test_salvage_boom"
            ]
        finally:
            _SPECS.pop("_engine_test_salvage_boom", None)

    def test_keep_going_returns_partial_outcome(self, tmp_path):
        @experiment("_engine_test_keep_going_boom")
        def boom():
            raise RuntimeError("kaput")

        try:
            engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
            outcome = engine.run(
                ["_engine_test_keep_going_boom", "fig20"], keep_going=True
            )
            assert "fig20" in outcome.results
            assert "_engine_test_keep_going_boom" not in outcome.results
            assert len(outcome.failures) == 1
        finally:
            _SPECS.pop("_engine_test_keep_going_boom", None)

    def test_pool_failure_records_real_wall_and_pid(self, tmp_path):
        @experiment("_engine_test_pool_boom")
        def boom():
            time.sleep(0.05)
            raise RuntimeError("pool kaput")

        try:
            engine = ExecutionEngine(jobs=2, cache_dir=tmp_path / "cache")
            outcome = engine.run(
                ["_engine_test_pool_boom", "fig20"], keep_going=True
            )
            record = {
                r.experiment_id: r for r in outcome.manifest.records
            }["_engine_test_pool_boom"]
            assert record.status == "error"
            assert "pool kaput" in record.error
            assert record.wall_time_s >= 0.05  # not the old 0.0 placeholder
            assert record.worker_pid not in (0, os.getpid())  # the worker's pid
        finally:
            _SPECS.pop("_engine_test_pool_boom", None)

    def test_timeout_resolution_order(self):
        fast = get_spec("fig20")
        slow = get_spec("fig18")
        engine = ExecutionEngine(jobs=1)
        assert engine._timeout_for(fast) == DEFAULT_TIMEOUT_S["fast"]
        assert engine._timeout_for(slow) == DEFAULT_TIMEOUT_S["slow"]
        assert ExecutionEngine(jobs=1, timeout_s=5.0)._timeout_for(fast) == 5.0
        assert ExecutionEngine(jobs=1, timeout_s=0)._timeout_for(fast) is None
        spec = ExperimentSpec("_t", lambda: None, timeout_s=9.0)
        assert engine._timeout_for(spec) == 9.0
        disabled = ExperimentSpec("_t2", lambda: None, timeout_s=0)
        assert engine._timeout_for(disabled) is None

    def test_resume_skips_completed_experiments(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
        engine.run(["fig20", "table1"])
        resumed = engine.run(["fig20", "table1"], resume=True)
        assert {r.status for r in resumed.manifest.records} == {"skipped"}
        # Results still served (from cache) so callers can render them.
        assert resumed.results["fig20"].to_text() == run_experiment(
            "fig20"
        ).to_text()

    def test_run_one_uses_cache(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
        first = engine.run_one("fig20")
        assert engine.cache.entry_count() == 1
        assert engine.run_one("fig20") == first

    def test_parallel_matches_serial_on_subset(self, tmp_path):
        ids = ["fig20", "fig22", "fig03", "table1", "table4"]
        parallel = run_experiments(
            ids, jobs=2, use_cache=False, cache_dir=tmp_path / "cache"
        )
        for eid in ids:
            assert parallel.results[eid].to_text() == run_experiment(eid).to_text()
        pids = {r.worker_pid for r in parallel.manifest.records}
        assert len(pids) > 1  # really ran in worker processes


@pytest.mark.slow
class TestFullSuiteParallelAndWarmCache:
    """The acceptance property: ``cryowire all --jobs 4`` equals serial
    ``cryowire all`` byte-for-byte, and a warm rerun is >= 90% hits."""

    def test_all_parallel_vs_serial_and_warm_rerun(self, tmp_path):
        ids = sorted(EXPERIMENTS)
        cache_dir = tmp_path / "cache"
        cold = ExecutionEngine(jobs=4, cache_dir=cache_dir).run(ids)
        serial_tables = {eid: run_experiment(eid).to_text() for eid in ids}
        for eid in ids:
            assert cold.results[eid].to_text() == serial_tables[eid]

        warm = ExecutionEngine(jobs=4, cache_dir=cache_dir).run(ids)
        for eid in ids:
            assert warm.results[eid].to_text() == serial_tables[eid]
        manifest = RunManifest.load(cache_dir / "last_run.json")
        assert len(manifest.records) == len(ids)
        assert manifest.hit_rate >= 0.9


class TestLoadLastManifest:
    def test_missing_manifest_is_quiet(self, tmp_path, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.experiments.engine"):
            assert load_last_manifest(tmp_path / "never-ran") is None
        assert not caplog.records  # "no manifest yet" is not warning-worthy

    def test_unreadable_manifest_warns(self, tmp_path, caplog):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "last_run.json").write_text("{truncated")
        with caplog.at_level(logging.WARNING, logger="repro.experiments.engine"):
            assert load_last_manifest(cache_dir) is None
        assert any(
            "unreadable run manifest" in record.getMessage()
            for record in caplog.records
        )


class TestCliFlags:
    def test_run_multiple_ids(self, capsys):
        assert main(["run", "fig20", "table4", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "fig20" in out and "table4" in out

    def test_run_json_format(self, capsys):
        assert main(["run", "fig20", "--format", "json", "--no-cache"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["experiment_id"] == "fig20"
        assert ExperimentResult.from_dict(data).lookup(
            "design", "cryobus", "broadcast"
        ) == 1

    def test_run_csv_format(self, capsys):
        assert main(["run", "table4", "--format", "csv", "--no-cache"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("system,")

    def test_output_dir_writes_one_artifact_per_experiment(
        self, tmp_path, capsys
    ):
        out_dir = tmp_path / "artifacts"
        assert (
            main(
                ["run", "fig20", "table4", "--format", "json",
                 "--output", str(out_dir), "--cache-dir", str(tmp_path / "c")]
            )
            == 0
        )
        assert sorted(p.name for p in out_dir.iterdir()) == [
            "fig20.json",
            "table4.json",
        ]
        payload = json.loads((out_dir / "fig20.json").read_text())
        assert payload["experiment_id"] == "fig20"

    def test_parallel_run_prints_identical_output(self, capsys, tmp_path):
        flags = ["--cache-dir", str(tmp_path / "c")]
        assert main(["run", "fig20", "fig22", "--no-cache"] + flags) == 0
        serial_out = capsys.readouterr().out
        assert main(["run", "fig20", "fig22", "--jobs", "2", "--no-cache"] + flags) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_stats_after_run(self, capsys, tmp_path):
        cache_flags = ["--cache-dir", str(tmp_path / "cache")]
        assert main(["run", "fig20"] + cache_flags) == 0
        capsys.readouterr()
        assert main(["stats"] + cache_flags) == 0
        out = capsys.readouterr().out
        assert "fig20" in out and "hit rate" in out

    def test_stats_without_manifest(self, capsys, tmp_path):
        assert main(["stats", "--cache-dir", str(tmp_path / "empty")]) == 1
        assert "no run manifest" in capsys.readouterr().out

    def test_warm_cli_rerun_hits(self, capsys, tmp_path):
        cache_flags = ["--cache-dir", str(tmp_path / "cache")]
        assert main(["run", "fig20", "table1"] + cache_flags) == 0
        assert main(["run", "fig20", "table1"] + cache_flags) == 0
        capsys.readouterr()
        assert main(["stats"] + cache_flags) == 0
        assert "2 hits" in capsys.readouterr().out


class TestLeakedThreadTracking:
    """The timeout path's leaked daemon threads: tracked, bounded, drained.

    Every test that provokes a leak gates the sleeping driver on an
    event and drains it before returning, so the process-wide gauge is
    back to zero for whoever runs next (the serve tests assert on it).
    """

    @staticmethod
    def _drain(stop_event, deadline_s=10.0):
        stop_event.set()
        deadline = time.monotonic() + deadline_s
        while leaked_thread_count() > 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert leaked_thread_count() == 0, "leaked driver thread failed to drain"

    def test_timeout_registers_a_leaked_thread(self):
        stop = threading.Event()

        @experiment("_engine_test_leak_sleeper")
        def _runner():
            stop.wait(30.0)
            result = ExperimentResult("_engine_test_leak_sleeper", "t", ("k", "v"))
            result.add_row("x", 1.0)
            return result

        engine = ExecutionEngine(jobs=1, use_cache=False, timeout_s=0.1, retries=0)
        try:
            with pytest.raises(ExperimentExecutionError, match="wall-clock"):
                engine.run_one("_engine_test_leak_sleeper")
            assert leaked_thread_count() >= 1
        finally:
            self._drain(stop)
            _SPECS.pop("_engine_test_leak_sleeper", None)

    def test_check_leak_budget_thresholds(self):
        stop = threading.Event()

        @experiment("_engine_test_leak_budget")
        def _runner():
            stop.wait(30.0)
            result = ExperimentResult("_engine_test_leak_budget", "t", ("k", "v"))
            result.add_row("x", 1.0)
            return result

        engine = ExecutionEngine(jobs=1, use_cache=False, timeout_s=0.1, retries=0)
        try:
            with pytest.raises(ExperimentExecutionError):
                engine.run_one("_engine_test_leak_budget")
            # One live leak: a budget of 1 is spent, 0 disables the check.
            with pytest.raises(LeakedThreadLimit, match="refusing new submissions"):
                check_leak_budget(1)
            check_leak_budget(0)
            check_leak_budget(leaked_thread_count() + 1)
        finally:
            self._drain(stop)
            _SPECS.pop("_engine_test_leak_budget", None)
        check_leak_budget(1)  # drained: the budget is free again

    def test_engine_refuses_submissions_past_the_leak_threshold(self):
        stop = threading.Event()

        @experiment("_engine_test_leak_refuse_sleeper")
        def _sleeper():
            stop.wait(30.0)
            result = ExperimentResult(
                "_engine_test_leak_refuse_sleeper", "t", ("k", "v")
            )
            result.add_row("x", 1.0)
            return result

        @experiment("_engine_test_leak_refuse_victim")
        def _victim():
            result = ExperimentResult(
                "_engine_test_leak_refuse_victim", "t", ("k", "v")
            )
            result.add_row("x", 1.0)
            return result

        try:
            leaky = ExecutionEngine(
                jobs=1, use_cache=False, timeout_s=0.1, retries=0, leak_threshold=0
            )
            with pytest.raises(ExperimentExecutionError):
                leaky.run_one("_engine_test_leak_refuse_sleeper")
            assert leaked_thread_count() >= 1

            bounded = ExecutionEngine(
                jobs=1, use_cache=False, retries=0, leak_threshold=1
            )
            with pytest.raises(ExperimentExecutionError, match="LeakedThreadLimit"):
                bounded.run_one("_engine_test_leak_refuse_victim")

            # The same submission sails through once the threshold allows it
            # (the refusal is the budget, not the experiment).
            tolerant = ExecutionEngine(
                jobs=1, use_cache=False, retries=0, leak_threshold=0
            )
            result = tolerant.run_one("_engine_test_leak_refuse_victim")
            assert result.rows == [("x", 1.0)]
        finally:
            self._drain(stop)
            _SPECS.pop("_engine_test_leak_refuse_sleeper", None)
            _SPECS.pop("_engine_test_leak_refuse_victim", None)

    def test_engine_rejects_negative_leak_threshold(self):
        with pytest.raises(ValueError, match="leak_threshold"):
            ExecutionEngine(jobs=1, leak_threshold=-1)

    def test_manifest_rolls_up_leaks_per_worker(self):
        """Records carry a per-worker gauge; the manifest total is the
        max per pid summed over pids, not the sum over records."""
        manifest = RunManifest(jobs=2, cache_dir="", cache_enabled=False)
        manifest.records = [
            RunRecord("a", "miss", worker_pid=100, leaked_threads=1),
            RunRecord("b", "miss", worker_pid=100, leaked_threads=3),
            RunRecord("c", "miss", worker_pid=200, leaked_threads=2),
            RunRecord("d", "hit", worker_pid=200, leaked_threads=0),
        ]
        assert manifest.n_leaked_threads == 5
        assert manifest.to_dict()["totals"]["leaked_threads"] == 5
        revived = RunRecord.from_dict(manifest.records[1].to_dict())
        assert revived.leaked_threads == 3


class TestBackoffJitterStreams:
    """Concurrent shard engines must not share a retry-jitter stream."""

    @staticmethod
    def _schedule(engine, n=8):
        return [engine._backoff_s(i) for i in range(1, n + 1)]

    def test_same_seed_same_stream_replays_identically(self):
        a = ExecutionEngine(jobs=1, rng_seed=42)
        b = ExecutionEngine(jobs=1, rng_seed=42)
        assert self._schedule(a) == self._schedule(b)

    def test_distinct_streams_decorrelate_same_seed_engines(self):
        a = ExecutionEngine(jobs=1, rng_seed=42, jitter_stream="engine.backoff.shard0")
        b = ExecutionEngine(jobs=1, rng_seed=42, jitter_stream="engine.backoff.shard1")
        assert self._schedule(a) != self._schedule(b)

    def test_derived_shard_seeds_decorrelate_default_stream(self):
        from repro.experiments.shard import derive_shard_seed

        a = ExecutionEngine(jobs=1, rng_seed=derive_shard_seed(42, 0))
        b = ExecutionEngine(jobs=1, rng_seed=derive_shard_seed(42, 1))
        assert self._schedule(a) != self._schedule(b)

    def test_shard_stream_is_deterministic(self):
        a = ExecutionEngine(jobs=1, rng_seed=7, jitter_stream="engine.backoff.shard3")
        b = ExecutionEngine(jobs=1, rng_seed=7, jitter_stream="engine.backoff.shard3")
        assert self._schedule(a) == self._schedule(b)
