"""Cross-engine agreement: flit vs packet vs analytic at low load."""

import math

import pytest

from repro.noc.equivalence import (
    DEFAULT_TOLERANCE,
    compare_engines,
    max_low_load_disagreement,
)
from repro.noc.latency import analytic_simulator_latency, n_directed_links
from repro.noc.topology import CMesh, Mesh

LOW_RATES = (0.002, 0.005, 0.01)


@pytest.fixture(scope="module")
def mesh_points():
    return compare_engines(Mesh(64), LOW_RATES, n_cycles=3000)


@pytest.fixture(scope="module")
def cmesh_points():
    return compare_engines(CMesh(64), LOW_RATES, n_cycles=3000)


class TestThreeEngineAgreement:
    def test_mesh_within_tolerance(self, mesh_points):
        assert max_low_load_disagreement(mesh_points) <= DEFAULT_TOLERANCE

    def test_cmesh_within_tolerance(self, cmesh_points):
        assert max_low_load_disagreement(cmesh_points) <= DEFAULT_TOLERANCE

    def test_all_low_load_points_comparable(self, mesh_points, cmesh_points):
        for point in (*mesh_points, *cmesh_points):
            assert point.comparable, (
                f"{point.topology_name} saturated at rate "
                f"{point.injection_rate} -- not a low-load point"
            )

    def test_within_reports_per_point(self, mesh_points):
        assert all(p.within() for p in mesh_points)
        assert not any(p.within(tolerance=0.0) for p in mesh_points)

    def test_pairwise_diffs_consistent(self, mesh_points):
        for p in mesh_points:
            assert p.max_disagreement == max(
                p.flit_vs_packet, p.flit_vs_analytic, p.packet_vs_analytic
            )


class TestHarnessPlumbing:
    def test_rejects_multi_cycle_links(self):
        with pytest.raises(ValueError):
            compare_engines(Mesh(16), (0.01,), link_cycles=2)

    def test_no_comparable_points_is_an_error(self):
        points = compare_engines(Mesh(16), (0.9,), n_cycles=1500, packet_flits=4)
        if all(not p.comparable for p in points):
            with pytest.raises(ValueError):
                max_low_load_disagreement(points)


class TestAnalyticSimulatorLatency:
    def test_matches_topology_structure(self):
        mesh = Mesh(16)
        # 4x4 mesh: 2 * (2 * 4 * 3) = 48 directed links.
        assert n_directed_links(mesh) == 48

    def test_zero_load_base(self):
        mesh = Mesh(16)
        base = analytic_simulator_latency(mesh, 1e-9)
        # 1.5 endpoint cycles + hops * (router + link), single-flit packets.
        assert base == pytest.approx(1.5 + mesh.average_hops() * 2, rel=1e-3)

    def test_monotone_in_rate(self):
        mesh = Mesh(64)
        lat = [analytic_simulator_latency(mesh, r) for r in (0.001, 0.01, 0.05)]
        assert lat[0] < lat[1] < lat[2]

    def test_infinite_past_capacity(self):
        assert math.isinf(analytic_simulator_latency(Mesh(64), 1.0))
