"""Smoke tests: every example script must run end to end."""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Examples fast enough to execute wholesale in the test suite.
FAST_EXAMPLES = (
    "quickstart.py",
    "batch_sweep.py",
    "pipeline_exploration.py",
    "coherence_traffic.py",
    "detailed_mode.py",
)


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 200  # produced a real report, not a stub


def test_noc_design_study_functions(capsys):
    """Run the NoC study's cheap sections (the sweep is bench-sized)."""
    module = runpy.run_path(str(EXAMPLES_DIR / "noc_design_study.py"))
    module["show_dynamic_link_connection"]()
    module["power_bill"]()
    out = capsys.readouterr().out
    assert "worst-case broadcast: 12 hops" in out
    assert "CryoBus" in out


def test_reproduce_paper_subset(capsys):
    module = runpy.run_path(str(EXAMPLES_DIR / "reproduce_paper.py"))
    assert module["main"](["fig20", "table1"]) == 0
    out = capsys.readouterr().out
    assert "fig20" in out and "table1" in out

    assert module["main"](["not_an_experiment"]) == 1


def test_quickstart_tells_the_whole_story(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    for marker in ("Devices at 77 K", "critical path", "CryoSP", "CryoBus",
                   "vs 300 K baseline"):
        assert marker.lower() in out.lower()
