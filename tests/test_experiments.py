"""Experiment drivers: every figure/table reproduces the paper's shape."""

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment


class TestFramework:
    def test_registry_covers_every_figure_and_table(self):
        expected = {
            "fig02", "fig03", "fig05", "fig09", "fig10", "fig12_14",
            "fig16", "fig17", "fig18", "fig20", "fig21", "fig22",
            "fig23", "fig24", "fig25", "fig26", "fig27",
            "table1", "table3", "table4",
            "ablation_superpipeline", "ablation_cryobus",
            "ablation_exposure", "ablation_interleaving", "ext_nodes",
            "robustness", "stage_assignment",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="available"):
            get_experiment("fig99")

    def test_result_row_width_checked(self):
        result = ExperimentResult("x", "t", ("a", "b"))
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_result_lookup(self):
        result = ExperimentResult("x", "t", ("k", "v"))
        result.add_row("one", 1.0)
        assert result.lookup("k", "one", "v") == 1.0
        with pytest.raises(KeyError):
            result.lookup("k", "two", "v")
        with pytest.raises(KeyError):
            result.column("w")

    def test_to_json_roundtrip(self):
        import json

        result = ExperimentResult("x", "t", ("k", "v"), paper_reference={"a": 1.0})
        result.add_row("one", 2.5)
        data = json.loads(result.to_json())
        assert data["experiment_id"] == "x"
        assert data["rows"] == [["one", 2.5]]
        assert data["paper_reference"] == {"a": 1.0}

    def test_to_csv(self):
        result = ExperimentResult("x", "t", ("k", "v"))
        result.add_row("one", 2.5)
        lines = result.to_csv().strip().splitlines()
        assert lines[0] == "k,v"
        assert lines[1] == "one,2.5"

    def test_to_text_renders(self):
        result = ExperimentResult("x", "title", ("k",), paper_reference={"r": 1.0})
        result.add_row("cell")
        text = result.to_text()
        assert "title" in text and "cell" in text and "r=1" in text


class TestFig02:
    def test_wire_fraction_anchor(self):
        result = run_experiment("fig02")
        assert result.lookup("stage", "mean", "wire_fraction") == pytest.approx(
            0.576, abs=0.04
        )


class TestFig03:
    def test_noc_fraction_anchors(self):
        result = run_experiment("fig03")
        mean = result.lookup("workload", "mean", "noc_plus_sync")
        assert mean == pytest.approx(0.456, abs=0.08)
        per_workload = [
            row[-1] for row in result.rows if row[0] != "mean"
        ]
        assert max(per_workload) == pytest.approx(0.766, abs=0.12)


class TestFig05:
    def test_anchors(self):
        result = run_experiment("fig05")
        semi = result.lookup("length_um", 900.0, "speedup_77k")
        # (900 um appears in the repeated semi-global series only)
        rows = [r for r in result.rows if r[0] == "semi_global_repeated"]
        semi = dict((r[1], r[2]) for r in rows)[900.0]
        assert 1.6 < semi < 2.6
        rows = [r for r in result.rows if r[0] == "global_repeated"]
        glob = dict((r[1], r[2]) for r in rows)[6220.0]
        assert glob == pytest.approx(3.38, abs=0.15)

    def test_unrepeated_maxima(self):
        result = run_experiment("fig05")
        local = max(r[2] for r in result.rows if r[0] == "local_unrepeated")
        semi = max(r[2] for r in result.rows if r[0] == "semi_global_unrepeated")
        assert 2.6 < local <= 2.96
        assert 3.3 < semi <= 3.70


class TestFig09:
    def test_all_validations_within_6_percent(self):
        result = run_experiment("fig09")
        for error in result.column("error"):
            assert error < 0.06


class TestFig10:
    def test_link_validation(self):
        result = run_experiment("fig10")
        _, model, sim, error = result.rows[0]
        assert model == pytest.approx(3.05, abs=0.2)
        assert error < 0.05


class TestFig12_14:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig12_14")

    def test_300k_max_is_unity(self, result):
        totals = [r[5] for r in result.rows if r[0] == "fig12_300K"]
        assert max(totals) == pytest.approx(1.0)

    def test_77k_reduction(self, result):
        totals = [r[5] for r in result.rows if r[0] == "fig13_77K"]
        assert 1 - max(totals) == pytest.approx(0.19, abs=0.03)

    def test_superpipelined_reduction(self, result):
        totals = [r[5] for r in result.rows if r[0] == "fig14_superpipelined_77K"]
        assert 1 - max(totals) == pytest.approx(0.38, abs=0.04)

    def test_superpipelined_has_16_stages(self, result):
        rows = [r for r in result.rows if r[0] == "fig14_superpipelined_77K"]
        assert len(rows) == 16


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig16")

    def test_mesh77_noc_dominates_hit(self, result):
        row = [r for r in result.rows if r[0] == "mesh" and r[1] == 77.0][0]
        assert row[5] == pytest.approx(0.717, abs=0.08)  # hit noc fraction

    def test_bus_nearly_reaches_zero_noc(self, result):
        bus = [r for r in result.rows if r[0] == "shared_bus" and r[1] == 77.0][0]
        mesh = [r for r in result.rows if r[0] == "mesh" and r[1] == 77.0][0]
        assert bus[2] < mesh[2] / 2  # hit NoC ns

    def test_77k_totals_below_300k(self, result):
        for name in ("mesh", "cmesh", "flattened_butterfly", "shared_bus"):
            warm = [r for r in result.rows if r[0] == name and r[1] == 300.0][0]
            cold = [r for r in result.rows if r[0] == name and r[1] == 77.0][0]
            assert cold[4] < warm[4]  # hit total
            assert cold[8] < warm[8]  # miss total


class TestFig17:
    def test_anchors(self):
        result = run_experiment("fig17")
        mesh = result.lookup("workload", "mean", "mesh_77k")
        bus = result.lookup("workload", "mean", "shared_bus_77k")
        assert mesh == pytest.approx(0.567, abs=0.06)
        assert bus == pytest.approx(0.919, abs=0.10)
        assert bus > mesh


class TestFig18:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig18", n_cycles=4000)

    def test_300k_bus_saturates_within_parsec_band(self, result):
        parsec = result.row_by("series", "range_parsec")
        parsec_hi = parsec[2]
        saturated_rates = [
            r[1] for r in result.rows if r[0] == "bus_300K" and r[3]
        ]
        assert saturated_rates and min(saturated_rates) <= parsec_hi

    def test_77k_bus_covers_parsec_but_not_spec(self, result):
        parsec_hi = result.row_by("series", "range_parsec")[2]
        spec_hi = result.row_by("series", "range_spec2006")[2]
        ok_rates = [r[1] for r in result.rows if r[0] == "bus_77K" and not r[3]]
        sat_rates = [r[1] for r in result.rows if r[0] == "bus_77K" and r[3]]
        assert max(ok_rates) >= parsec_hi * 0.9
        assert sat_rates and min(sat_rates) < spec_hi

    def test_suite_bands_ordered(self, result):
        parsec = result.row_by("series", "range_parsec")
        spec = result.row_by("series", "range_spec2006")
        assert parsec[2] < spec[2]


class TestFig20:
    def test_only_cryobus_meets_target(self):
        result = run_experiment("fig20")
        meets = {row[0]: row[8] for row in result.rows if row[1] == 77.0 or row[0] != "shared_bus"}
        by_design = {(row[0], row[1]): row[6] for row in result.rows}
        assert by_design[("shared_bus", 300.0)] == 8
        assert by_design[("shared_bus", 77.0)] == 3
        assert by_design[("htree_bus", 300.0)] == 3
        assert by_design[("cryobus", 77.0)] == 1
        winners = [row[0] for row in result.rows if row[8]]
        assert winners == ["cryobus"]


class TestFig22:
    def test_anchors(self):
        result = run_experiment("fig22")
        assert result.lookup("design", "mesh_300K", "total") == pytest.approx(1.0)
        assert result.lookup("design", "mesh_77K", "total") == pytest.approx(
            0.72, abs=0.05
        )
        assert result.lookup("design", "shared_bus_77K", "total") == pytest.approx(
            0.617, abs=0.05
        )
        assert result.lookup("design", "cryobus", "total") == pytest.approx(
            0.428, abs=0.05
        )


class TestFig23:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig23")

    def test_reference_column_is_unity(self, result):
        assert result.lookup(
            "workload", "mean", "CHP-core (77K, Mesh)"
        ) == pytest.approx(1.0)

    def test_full_system_mean(self, result):
        mean = result.lookup("workload", "mean", "CryoSP (77K, CryoBus)")
        assert mean == pytest.approx(2.53, abs=0.45)

    def test_vs_300k_baseline(self, result):
        combined = result.lookup("workload", "mean", "CryoSP (77K, CryoBus)")
        baseline = result.lookup("workload", "mean", "Baseline (300K, Mesh)")
        assert combined / baseline == pytest.approx(3.82, abs=0.6)

    def test_cryosp_core_gain(self, result):
        mean = result.lookup("workload", "mean", "CryoSP (77K, Mesh)")
        assert mean == pytest.approx(1.161, abs=0.08)

    def test_cryobus_gain(self, result):
        mean = result.lookup("workload", "mean", "CHP-core (77K, CryoBus)")
        assert mean == pytest.approx(2.1, abs=0.35)

    def test_streamcluster_extremes(self, result):
        combined = result.lookup(
            "workload", "streamcluster", "CryoSP (77K, CryoBus)"
        )
        bus_only = result.lookup(
            "workload", "streamcluster", "CHP-core (77K, CryoBus)"
        )
        assert combined == pytest.approx(5.74, abs=1.0)
        assert bus_only == pytest.approx(4.63, abs=1.0)
        assert combined == max(
            result.lookup("workload", p, "CryoSP (77K, CryoBus)")
            for p in result.column("workload")
            if p != "mean"
        )

    def test_memory_bound_cores_gain_least(self, result):
        """bodytrack and x264 see the smallest CryoSP-only gains."""
        gains = {
            p: result.lookup("workload", p, "CryoSP (77K, Mesh)")
            for p in result.column("workload")
            if p != "mean"
        }
        for name in ("bodytrack", "x264"):
            assert gains[name] == pytest.approx(1.08, abs=0.05)


class TestFig24:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig24")

    def test_cryobus_vs_300k(self, result):
        mean = result.lookup("workload", "mean", "CryoSP (77K, CryoBus)")
        assert mean == pytest.approx(2.11, abs=0.45)

    def test_2way_strictly_better(self, result):
        for row in result.rows:
            assert row[5] >= row[4] - 1e-9

    def test_2way_mean(self, result):
        mean = result.lookup("workload", "mean", "CryoSP (77K, CryoBus, 2-way)")
        assert mean == pytest.approx(2.34, abs=0.5)

    def test_contention_workloads_gain_from_interleaving(self, result):
        from repro.experiments.fig24 import CONTENTION_WORKLOADS

        for name in CONTENTION_WORKLOADS:
            single = result.lookup("workload", name, "CryoSP (77K, CryoBus)")
            double = result.lookup(
                "workload", name, "CryoSP (77K, CryoBus, 2-way)"
            )
            assert double > single * 1.02


class TestFig26:
    def test_hybrid_lowest_zero_load(self):
        result = run_experiment("fig26")
        first_rate = min(r[1] for r in result.rows)
        at_zero = {
            r[0]: r[2] for r in result.rows if r[1] == first_rate
        }
        hybrid = at_zero["hybrid_cryobus"]
        for name, latency in at_zero.items():
            if not name.startswith("hybrid"):
                assert hybrid < latency


class TestFig27:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig27")

    def test_100k_beats_77k_and_300k(self, result):
        """The paper's Section 7.4 claim."""
        at_100 = result.lookup("temperature_k", 100.0, "perf_per_power")
        at_77 = result.lookup("temperature_k", 77.0, "perf_per_power")
        at_300 = result.lookup("temperature_k", 300.0, "perf_per_power")
        assert at_100 > at_77
        assert at_100 > at_300

    def test_cooling_overhead_grows_exponentially_cold(self, result):
        temps = result.column("temperature_k")
        overheads = result.column("cooling_overhead")
        paired = sorted(zip(temps, overheads))
        values = [o for _, o in paired]
        assert values == sorted(values, reverse=True)

    def test_performance_roughly_linear_in_temperature(self, result):
        perf_77 = result.lookup("temperature_k", 77.0, "performance_rel")
        perf_300 = result.lookup("temperature_k", 300.0, "performance_rel")
        assert perf_77 > 1.5 * perf_300


class TestTables:
    def test_table1_forwarding_wire(self):
        result = run_experiment("table1")
        length = result.lookup("item", "forwarding_wire_8wide", "height_um")
        assert length == pytest.approx(1686.0, abs=10.0)

    def test_table3_chain(self):
        result = run_experiment("table3")
        assert result.lookup(
            "design", "77K CryoSP", "frequency_ghz"
        ) == pytest.approx(7.84, rel=0.05)
        assert result.lookup("design", "CHP-core", "frequency_ghz") == pytest.approx(
            6.1, rel=0.05
        )

    def test_table4_lists_all_systems(self):
        result = run_experiment("table4")
        assert len(result.rows) == 8


class TestStageAssignment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("stage_assignment")

    def test_sweeps_every_placement_and_link_kind(self, result):
        # 3 components x 3 stages each, under 2 link technologies.
        assert len(result.rows) == 3 ** 3 * 2

    def test_rows_sorted_by_wall_plug_power(self, result):
        wall = result.column("wall_plug_w")
        assert wall == sorted(wall)

    def test_everything_warm_is_cheapest(self, result):
        """With 4 K watts ~7400x and 77 K watts ~10.65x, the ledger puts
        the all-300 K assignment first despite its higher device power."""
        best = result.rows[0]
        assert best[:3] == ("300K", "300K", "300K")

    def test_anything_at_4k_blows_the_envelope(self, result):
        for row in result.rows:
            if "4K" in row[:3]:
                assert not row[-1]

    def test_envelope_flag_matches_wall_plug(self, result):
        from repro.experiments.stage_assignment import DEFAULT_ENVELOPE_W

        for row in result.rows:
            assert row[-1] == (row[6] <= DEFAULT_ENVELOPE_W)

    def test_tco_never_below_wall_plug(self, result):
        for row in result.rows:
            assert row[7] >= row[6]

    def test_rejects_nonpositive_envelope(self):
        from repro.experiments.stage_assignment import run

        with pytest.raises(ValueError):
            run(envelope_w=0.0)
