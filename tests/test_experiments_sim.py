"""Simulation-heavy experiments, exercised at reduced scale."""

import pytest

from repro.experiments.fig21 import run as run_fig21
from repro.experiments.fig25 import run as run_fig25
from repro.experiments.fig26 import run as run_fig26

RATES = (0.001, 0.004, 0.009)


class TestFig21Small:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig21(rates=RATES, n_cycles=2500, include_routers=(1,))

    def test_cryobus_lowest_zero_load(self, result):
        lowest_rate = min(RATES)
        at_low = {
            row[0]: row[2] for row in result.rows if row[1] == lowest_rate
        }
        assert at_low["cryobus"] <= min(
            v for k, v in at_low.items() if k != "cryobus"
        )

    def test_shared_bus_saturates_before_cryobus(self, result):
        bus_sat = [r[1] for r in result.rows if r[0] == "shared_bus_77K" and r[3]]
        cryo_sat = [r[1] for r in result.rows if r[0] == "cryobus" and r[3]]
        assert bus_sat  # the 77 K linear bus gives out inside the sweep
        assert not cryo_sat or min(cryo_sat) > min(bus_sat)

    def test_mesh_latency_flat_in_this_range(self, result):
        mesh = [r[2] for r in result.rows if r[0] == "mesh_64_1cyc"]
        assert max(mesh) - min(mesh) < 3.0

    def test_2way_at_least_matches_1way(self, result):
        for rate in RATES:
            one = [r for r in result.rows if r[0] == "cryobus" and r[1] == rate][0]
            two = [
                r for r in result.rows if r[0] == "cryobus_2way" and r[1] == rate
            ][0]
            assert two[2] <= one[2] + 1.0


class TestFig25Small:
    def test_bus_pattern_insensitive(self):
        result = run_fig25(
            patterns=("transpose", "hotspot"), rates=(0.002,), n_cycles=2000
        )
        cryo = [r[3] for r in result.rows if r[1] == "cryobus"]
        assert max(cryo) - min(cryo) < 2.0

    def test_hotspot_hurts_routers_more_than_bus(self):
        result = run_fig25(
            patterns=("hotspot",), rates=(0.006,), n_cycles=2500
        )
        rows = {r[1]: (r[3], r[4]) for r in result.rows}
        mesh_lat, mesh_sat = rows["mesh_64_1cyc"]
        cryo_lat, cryo_sat = rows["cryobus"]
        assert cryo_lat < mesh_lat or (mesh_sat and not cryo_sat)


class TestFig26Scaling:
    def test_hybrid_scales_past_one_bus(self):
        result = run_fig26(rates=(0.0005, 0.003))
        hybrid = [r for r in result.rows if r[0] == "hybrid_cryobus"]
        # Aggregate 0.003*256 = 0.77 pkt/cycle would squeeze a single
        # CryoBus; the hybrid still runs unsaturated.
        assert not hybrid[-1][3]
