"""Flit-level VC simulator and its agreement with the packet engine."""

import pytest

from repro.noc.flitsim import FlitLevelSimulator
from repro.noc.simulator import NocSimulator
from repro.noc.topology import CMesh, FlattenedButterfly, Mesh
from repro.noc.traffic import make_pattern


@pytest.fixture(scope="module")
def mesh16():
    return Mesh(16)


@pytest.fixture(scope="module")
def pattern16():
    return make_pattern("uniform", 16)


class TestBasics:
    def test_zero_load_latency_sane(self, mesh16, pattern16):
        sim = FlitLevelSimulator(mesh16)
        point = sim.simulate(pattern16, 0.01, n_cycles=2000)
        # ~2.67 hops x (router + link) + inject/eject machinery.
        assert 4.0 < point.mean_latency_cycles < 10.0
        assert not point.saturated

    def test_all_packets_delivered_at_low_load(self, mesh16, pattern16):
        sim = FlitLevelSimulator(mesh16)
        point = sim.simulate(pattern16, 0.02, n_cycles=2000)
        assert point.acceptance > 0.95

    def test_latency_monotone_in_load(self, mesh16, pattern16):
        sim = FlitLevelSimulator(mesh16)
        low = sim.simulate(pattern16, 0.02, n_cycles=2500)
        high = sim.simulate(pattern16, 0.35, n_cycles=2500)
        assert high.mean_latency_cycles > low.mean_latency_cycles

    def test_saturation_at_extreme_load(self, mesh16, pattern16):
        sim = FlitLevelSimulator(mesh16, packet_flits=4)
        point = sim.simulate(pattern16, 0.8, n_cycles=2500)
        assert point.saturated or point.mean_latency_cycles > 60

    def test_three_cycle_router_slower(self, mesh16, pattern16):
        fast = FlitLevelSimulator(mesh16, router_cycles=1)
        slow = FlitLevelSimulator(mesh16, router_cycles=3)
        f = fast.simulate(pattern16, 0.02, n_cycles=2000)
        s = slow.simulate(pattern16, 0.02, n_cycles=2000)
        assert s.mean_latency_cycles > f.mean_latency_cycles + 3

    def test_multi_flit_packets_add_serialisation(self, mesh16, pattern16):
        single = FlitLevelSimulator(mesh16, packet_flits=1)
        multi = FlitLevelSimulator(mesh16, packet_flits=4)
        a = single.simulate(pattern16, 0.02, n_cycles=2000)
        b = multi.simulate(pattern16, 0.02, n_cycles=2000)
        assert b.mean_latency_cycles > a.mean_latency_cycles + 2

    def test_deterministic(self, mesh16, pattern16):
        sim = FlitLevelSimulator(mesh16)
        a = sim.simulate(pattern16, 0.05, n_cycles=1500, seed="s")
        b = sim.simulate(pattern16, 0.05, n_cycles=1500, seed="s")
        assert a.mean_latency_cycles == b.mean_latency_cycles

    def test_works_on_flattened_butterfly(self, pattern16):
        sim = FlitLevelSimulator(FlattenedButterfly(16, concentration=4))
        point = sim.simulate(pattern16, 0.05, n_cycles=2000)
        assert point.delivered_packets > 0
        assert point.mean_latency_cycles < 15

    def test_validates_arguments(self, mesh16, pattern16):
        with pytest.raises(ValueError):
            FlitLevelSimulator(mesh16, n_vcs=0)
        with pytest.raises(ValueError):
            FlitLevelSimulator(mesh16, router_cycles=0)
        with pytest.raises(ValueError):
            FlitLevelSimulator(mesh16).simulate(pattern16, 0.05, n_cycles=10)
        with pytest.raises(ValueError):
            FlitLevelSimulator(mesh16).simulate(make_pattern("uniform", 64), 0.05)


class TestMeasurementAccounting:
    """Concentrated topologies exposed an offered/delivered mismatch:
    packets whose source and destination share a router were counted as
    offered but never delivered, deflating acceptance below 1.0 and
    falsely tripping the saturation test at trivial loads."""

    def test_cmesh_acceptance_is_exactly_one_at_low_load(self):
        sim = FlitLevelSimulator(CMesh(64))
        point = sim.simulate(make_pattern("uniform", 64), 0.005, n_cycles=3000)
        assert point.acceptance == 1.0
        assert not point.saturated

    def test_flattened_butterfly_not_falsely_saturated(self):
        sim = FlitLevelSimulator(FlattenedButterfly(16, concentration=4))
        point = sim.simulate(make_pattern("uniform", 16), 0.01, n_cycles=3000)
        assert point.acceptance == 1.0
        assert not point.saturated

    def test_same_router_delivery_counts_serialisation(self):
        # With concentration 4, a quarter-ish of uniform packets stay
        # local; their latency (2 + flits - 1) must pull the mean below
        # a pure cross-network estimate, not vanish from the histogram.
        sim = FlitLevelSimulator(CMesh(64), packet_flits=4)
        point = sim.simulate(make_pattern("uniform", 64), 0.005, n_cycles=3000)
        assert point.delivered_packets == point.offered_packets
        assert point.mean_latency_cycles > 5  # 2 + 3 is the local floor


class TestStateRelease:
    """Owner/credit bookkeeping must be bounded and fully released."""

    def test_state_released_after_drain(self, mesh16, pattern16):
        sim = FlitLevelSimulator(mesh16, n_vcs=2, packet_flits=4)
        sim.simulate(pattern16, 0.1, n_cycles=2500)
        stats = sim.last_run_stats
        assert stats["owned_output_vcs"] == 0
        assert stats["credits_outstanding"] == 0
        assert stats["buffered_flits"] == 0

    def test_state_size_independent_of_traffic_volume(self, mesh16, pattern16):
        """A 4x16 mesh has at most 16 * 5 ports; the owner table must
        scale with ports x VCs, never with packets simulated."""
        sim = FlitLevelSimulator(mesh16, n_vcs=2)
        sim.simulate(pattern16, 0.02, n_cycles=1500)
        light = dict(sim.last_run_stats)
        sim.simulate(pattern16, 0.3, n_cycles=4000)
        heavy = dict(sim.last_run_stats)
        for stats in (light, heavy):
            assert stats["in_ports"] <= 16 * 5
            assert stats["out_ports"] <= 16 * 5


class TestCrossValidation:
    """The packet-level shortcuts must not distort the curves."""

    def test_agrees_with_packet_level_at_low_load(self, mesh16, pattern16):
        flit = FlitLevelSimulator(mesh16).simulate(pattern16, 0.02, n_cycles=3000)
        packet = NocSimulator(n_cycles=3000).simulate_router_network(
            mesh16, pattern16, 0.02
        )
        assert flit.mean_latency_cycles == pytest.approx(
            packet.mean_latency_cycles, rel=0.35
        )

    def test_agrees_at_moderate_load(self, mesh16, pattern16):
        flit = FlitLevelSimulator(mesh16).simulate(pattern16, 0.15, n_cycles=3000)
        packet = NocSimulator(n_cycles=3000).simulate_router_network(
            mesh16, pattern16, 0.15
        )
        assert flit.mean_latency_cycles == pytest.approx(
            packet.mean_latency_cycles, rel=0.45
        )

    def test_same_saturation_ordering(self, mesh16, pattern16):
        """Both engines agree on which load saturates the mesh."""
        flit_sim = FlitLevelSimulator(mesh16, packet_flits=4)
        packet_sim = NocSimulator(n_cycles=2500, packet_flits=4)
        for rate in (0.05, 0.8):
            flit = flit_sim.simulate(pattern16, rate, n_cycles=2500)
            packet = packet_sim.simulate_router_network(mesh16, pattern16, rate)
            heavy_flit = flit.saturated or flit.mean_latency_cycles > 50
            heavy_packet = packet.saturated or packet.mean_latency_cycles > 50
            assert heavy_flit == heavy_packet
