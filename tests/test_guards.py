"""Physics guardrails: guard contexts, validators, degradation, watchdogs."""

import math
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.circuits.elmore import elmore_delay_ladder, elmore_t50_ladder
from repro.circuits.rc_line import RCLadder
from repro.circuits.simulator import CircuitSimulator
from repro.experiments.base import ExperimentResult
from repro.experiments.engine import ExecutionEngine
from repro.experiments.registry import _SPECS, experiment, run_experiment
from repro.noc.bus import CryoBusDesign
from repro.noc.flitsim import FlitLevelSimulator
from repro.noc.simulator import NocSimulator
from repro.noc.topology import Mesh
from repro.noc.traffic import make_pattern
from repro.system.config import CHP_77K_CRYOBUS, BASELINE_300K_MESH
from repro.system.multicore import (
    CONVERGENCE_RTOL,
    ConvergenceInfo,
    CpiStack,
    MulticoreSystem,
)
from repro.tech import constants as tech_constants
from repro.tech import mosfet as tech_mosfet
from repro.tech.operating_point import OperatingPoint
from repro.util import guards as guards_module
from repro.util.guards import (
    ERROR,
    INFO,
    WARNING,
    GuardContext,
    ModelValidityError,
    ModelWarning,
    SimulationStalled,
    check_operating_point,
    get_guards,
    use_guards,
    validate_operating_point,
    validate_wire_geometry,
    validate_workload_profile,
    warn,
)
from repro.workloads.profiles import WorkloadProfile, by_name


# ---------------------------------------------------------------------------
# Guard context machinery
# ---------------------------------------------------------------------------


class TestGuardContext:
    def test_record_stores_and_counts(self):
        ctx = GuardContext()
        ctx.warn("site.a", "first", severity=WARNING)
        ctx.warn("site.a", "second", severity=ERROR)
        assert ctx.total == 2
        assert ctx.counts() == {INFO: 0, WARNING: 1, ERROR: 1}
        assert ctx.worst == ERROR
        assert ctx.has_errors()
        assert [w.message for w in ctx.warnings] == ["first", "second"]

    def test_identical_findings_dedup_in_storage_but_count(self):
        ctx = GuardContext()
        for _ in range(5):
            ctx.warn("site.loop", "same problem", op=(350.0, None, None))
        assert ctx.total == 5
        assert len(ctx.warnings) == 1  # one distinct finding stored

    def test_strict_escalates_non_info(self):
        ctx = GuardContext(strict=True)
        ctx.warn("site", "fyi", severity=INFO)  # info never escalates
        with pytest.raises(ModelValidityError) as excinfo:
            ctx.warn("site", "out of domain", severity=WARNING)
        assert excinfo.value.warning.site == "site"
        assert "out of domain" in str(excinfo.value)

    def test_disabled_context_is_inert(self):
        ctx = GuardContext(strict=True, enabled=False)
        ctx.warn("site", "nothing happens", severity=ERROR)
        assert ctx.total == 0
        assert ctx.warnings == ()
        assert ctx.worst is None

    def test_bounded_storage_reports_dropped(self):
        ctx = GuardContext(max_records=2)
        for idx in range(4):
            ctx.warn("site", f"finding {idx}")
        assert ctx.total == 4
        assert len(ctx.warnings) == 2
        assert ctx.dropped == 2
        # The deque keeps the newest findings.
        assert [w.message for w in ctx.warnings] == ["finding 2", "finding 3"]

    def test_clear_resets_everything(self):
        ctx = GuardContext()
        ctx.warn("site", "finding")
        ctx.clear()
        assert ctx.total == 0
        assert ctx.warnings == ()
        assert ctx.worst is None

    def test_max_records_must_be_positive(self):
        with pytest.raises(ValueError):
            GuardContext(max_records=0)

    def test_use_guards_installs_and_restores(self):
        outer = get_guards()
        with use_guards() as inner:
            assert get_guards() is inner
            assert inner is not outer
            with use_guards(strict=True) as nested:
                assert get_guards() is nested
                assert nested.strict
            assert get_guards() is inner
        assert get_guards() is outer

    def test_module_warn_targets_active_context(self):
        with use_guards() as ctx:
            warn("site.module", "via module helper", op=300.0)
        assert [w.site for w in ctx.warnings] == ["site.module"]
        assert ctx.warnings[0].op == (300.0, None, None)
        # Nothing leaked into the ambient default.
        assert "site.module" not in {w.site for w in get_guards().warnings}

    def test_context_is_thread_local(self):
        with use_guards() as main_ctx:
            seen = {}

            def worker():
                with use_guards() as thread_ctx:
                    warn("site.thread", "from the worker")
                    seen["count"] = thread_ctx.total

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert seen["count"] == 1
            assert main_ctx.total == 0  # the worker's finding stayed there


class TestModelWarning:
    def test_round_trips_through_dict(self):
        original = ModelWarning(
            site="s", message="m", severity=ERROR, op=(77.0, 0.55, 0.32), op_name="p"
        )
        assert ModelWarning.from_dict(original.to_dict()) == original

    def test_round_trips_without_point(self):
        original = ModelWarning(site="s", message="m")
        assert ModelWarning.from_dict(original.to_dict()) == original

    def test_render_mentions_severity_site_and_point(self):
        text = ModelWarning(
            site="metal.wire", message="too cold", op=(4.0, None, None)
        ).render()
        assert "[warning]" in text
        assert "metal.wire" in text
        assert "too cold" in text

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            ModelWarning(site="s", message="m", severity="fatal")


class TestConstantsMirrorTechLayer:
    """guards.py must not import the tech layer, so it mirrors its
    calibration constants; this pins the mirror against drift."""

    def test_hard_range_matches(self):
        assert guards_module.T_HARD_MIN_K == tech_constants.T_MODEL_MIN
        assert guards_module.T_HARD_MAX_K == tech_constants.T_MODEL_MAX

    def test_deep_cryo_floor_matches(self):
        assert guards_module.T_DEEP_CRYO_MIN_K == tech_constants.T_STAGE_MIN

    def test_calibration_anchors_match(self):
        assert guards_module.T_CALIBRATED_MIN_K == tech_constants.T_LN2
        assert guards_module.T_CALIBRATED_MAX_K == tech_constants.T_ROOM

    def test_overdrive_floor_matches(self):
        assert guards_module.MIN_OVERDRIVE_V == tech_mosfet.MIN_OVERDRIVE_V


# ---------------------------------------------------------------------------
# Domain validators
# ---------------------------------------------------------------------------


class TestValidateOperatingPoint:
    def test_clean_point_has_no_findings(self):
        with use_guards() as ctx:
            found = validate_operating_point(OperatingPoint.at(77.0, 0.55, 0.32))
        assert found == ()
        assert ctx.total == 0

    def test_out_of_hard_range_is_error(self):
        found = validate_operating_point((1.0, None, None), guards=GuardContext())
        assert [w.severity for w in found] == [ERROR]
        assert "hard model range" in found[0].message

    def test_deep_cryogenic_stage_domain_is_warning(self):
        """4 K is a modeled thermal stage, not an out-of-range error —
        but the silicon device models carry low calibration confidence
        there, so the guard describes it with a distinct warning tier."""
        found = validate_operating_point((4.0, None, None), guards=GuardContext())
        assert [w.severity for w in found] == [WARNING]
        assert "deep-cryogenic" in found[0].message
        assert "calibration confidence" in found[0].message

    def test_deep_cryo_tier_spans_2_to_60(self):
        for t in (2.0, 30.0, 59.999):
            found = validate_operating_point((t, None, None), guards=GuardContext())
            assert [w.severity for w in found] == [WARNING], t
            assert "deep-cryogenic" in found[0].message, t

    def test_vth_above_vdd_is_error(self):
        found = validate_operating_point((77.0, 0.4, 0.6), guards=GuardContext())
        assert any(w.severity == ERROR and "exceed Vth" in w.message for w in found)

    def test_extrapolation_is_warning(self):
        found = validate_operating_point(
            OperatingPoint.at(350.0), guards=GuardContext()
        )
        assert [w.severity for w in found] == [WARNING]
        assert "extrapolates" in found[0].message

    def test_thin_overdrive_is_warning(self):
        found = validate_operating_point((300.0, 0.50, 0.47), guards=GuardContext())
        assert [w.severity for w in found] == [WARNING]
        assert "overdrive" in found[0].message

    def test_nan_temperature_is_error(self):
        found = validate_operating_point(
            (float("nan"), None, None), guards=GuardContext()
        )
        assert [w.severity for w in found] == [ERROR]
        assert "not physical" in found[0].message

    def test_negative_rails_are_errors(self):
        found = validate_operating_point((77.0, -1.0, -0.3), guards=GuardContext())
        assert {w.severity for w in found} == {ERROR}
        assert len(found) == 2

    def test_bare_temperature_accepted(self):
        found = validate_operating_point(350.0, guards=GuardContext())
        assert found[0].op == (350.0, None, None)

    def test_none_is_a_type_error(self):
        with pytest.raises(TypeError):
            validate_operating_point(None, guards=GuardContext())

    def test_strict_context_raises_on_first_finding(self):
        with use_guards(strict=True):
            with pytest.raises(ModelValidityError):
                validate_operating_point((4.0, None, None))

    def test_check_operating_point_clean_path_records_nothing(self):
        op = OperatingPoint.at(135.0, 0.55, 0.32)
        with use_guards() as ctx:
            assert check_operating_point(op) is op
        assert ctx.total == 0

    def test_check_operating_point_records_extrapolation(self):
        op = OperatingPoint.at(350.0)
        with use_guards() as ctx:
            assert check_operating_point(op, "test.site") is op
        assert [w.site for w in ctx.warnings] == ["test.site"]

    def test_check_operating_point_disabled_is_passthrough(self):
        op = OperatingPoint.at(350.0)
        with use_guards(enabled=False) as ctx:
            assert check_operating_point(op) is op
        assert ctx.total == 0


class TestValidateWireGeometry:
    def test_clean_length(self):
        assert validate_wire_geometry(6000.0, guards=GuardContext()) == ()

    def test_nonpositive_is_error(self):
        found = validate_wire_geometry(-1.0, guards=GuardContext())
        assert [w.severity for w in found] == [ERROR]

    def test_non_finite_is_error(self):
        found = validate_wire_geometry(float("nan"), guards=GuardContext())
        assert [w.severity for w in found] == [ERROR]

    def test_implausibly_long_is_warning(self):
        found = validate_wire_geometry(
            2e5, layer_name="global", guards=GuardContext()
        )
        assert [w.severity for w in found] == [WARNING]
        assert "global wire" in found[0].message


class TestValidateWorkloadProfile:
    def test_real_profile_is_clean(self):
        assert validate_workload_profile(by_name("canneal"), guards=GuardContext()) == ()

    def test_bad_rates_are_errors(self):
        fake = SimpleNamespace(
            name="bogus",
            base_cpi=0.0,
            ilp=-1.0,
            restarts_pki=-2.0,
            l1d_mpki=1.0,
            l2_mpki=1.0,
            l3_mpki=1.0,
            barrier_pki=0.0,
            lock_pki=0.0,
            sharing_fraction=1.5,
        )
        found = validate_workload_profile(fake, guards=GuardContext())
        severities = [w.severity for w in found]
        assert severities.count(ERROR) == 4  # base_cpi, ilp, restarts, sharing

    def test_non_monotone_miss_chain_is_warning(self):
        fake = SimpleNamespace(
            name="inverted",
            base_cpi=0.5,
            ilp=2.0,
            restarts_pki=1.0,
            l1d_mpki=1.0,
            l2_mpki=5.0,
            l3_mpki=0.5,
            barrier_pki=0.0,
            lock_pki=0.0,
            sharing_fraction=0.1,
        )
        found = validate_workload_profile(fake, guards=GuardContext())
        assert [w.severity for w in found] == [WARNING]
        assert "miss chain" in found[0].message


# ---------------------------------------------------------------------------
# Multicore convergence certificates
# ---------------------------------------------------------------------------


def _heavy_profile() -> WorkloadProfile:
    """Synthetic memory hog that drives a bus fabric past saturation."""
    return WorkloadProfile(
        name="synthetic_hog",
        suite="synthetic",
        base_cpi=0.3,
        ilp=4.0,
        restarts_pki=2.0,
        l1d_mpki=220.0,
        l2_mpki=180.0,
        l3_mpki=40.0,
        barrier_pki=0.0,
        lock_pki=0.0,
        sharing_fraction=0.2,
    )


class TestMulticoreCertificates:
    def test_iterations_zero_is_a_value_error(self):
        system = MulticoreSystem(BASELINE_300K_MESH)
        with pytest.raises(ValueError, match="iterations"):
            system.evaluate(by_name("canneal"), iterations=0)

    def test_negative_tolerance_rejected(self):
        system = MulticoreSystem(BASELINE_300K_MESH)
        with pytest.raises(ValueError, match="tolerance"):
            system.evaluate(by_name("canneal"), tolerance=-1e-3)

    def test_normal_solve_carries_a_converged_certificate(self):
        result = MulticoreSystem(BASELINE_300K_MESH).evaluate(by_name("canneal"))
        cert = result.convergence
        assert isinstance(cert, ConvergenceInfo)
        assert cert.converged
        assert cert.residual <= CONVERGENCE_RTOL
        assert not cert.saturation_clamped
        assert result.iterations_used >= 1

    def test_truncated_solve_is_uncertified_and_warns(self):
        system = MulticoreSystem(CHP_77K_CRYOBUS)
        with use_guards() as ctx:
            result = system.evaluate(_heavy_profile(), iterations=1)
        cert = result.convergence
        assert not cert.converged
        assert cert.residual > CONVERGENCE_RTOL
        assert "multicore.convergence" in {w.site for w in ctx.warnings}

    def test_saturation_clamp_is_recorded_and_warns(self):
        system = MulticoreSystem(CHP_77K_CRYOBUS)
        with use_guards() as ctx:
            result = system.evaluate(_heavy_profile())
        assert result.convergence.saturation_clamped
        assert "multicore.saturation" in {w.site for w in ctx.warnings}

    def test_strict_context_fails_the_saturated_solve(self):
        system = MulticoreSystem(CHP_77K_CRYOBUS)
        with use_guards(strict=True):
            with pytest.raises(ModelValidityError):
                system.evaluate(_heavy_profile())

    def test_zero_stack_fractions_are_zero_not_nan(self):
        stack = CpiStack(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        fractions = stack.fractions()
        assert set(fractions.values()) == {0.0}

    def test_miss_split_clamps_excess_sharing(self):
        system = MulticoreSystem(BASELINE_300K_MESH)
        fake = SimpleNamespace(l2_mpki=10.0, l3_mpki=5.0, sharing_fraction=1.5)
        split = system._miss_split(fake, None)
        assert split["c2c_pki"] == 10.0  # clamped to the misses themselves
        assert split["dram_pki"] == 0.0
        assert split["l3_hit_pki"] == 0.0


# ---------------------------------------------------------------------------
# RC solver degradation
# ---------------------------------------------------------------------------


def _sections(n=16, r=50.0, c=2e-15):
    return [(r, c)] * n


class TestRCLadderDegradation:
    def test_eigensolver_failure_degrades_to_elmore(self, monkeypatch):
        def broken(*args, **kwargs):
            raise np.linalg.LinAlgError("did not converge")

        monkeypatch.setattr(np.linalg, "eigh", broken)
        with use_guards() as ctx:
            ladder = RCLadder(100.0, _sections(), load_c_f=1e-15)
            t50 = ladder.crossing_time(0.5)
        assert ladder.degraded
        assert "eigensolver failed" in ladder.degraded_reason
        assert "rc_ladder.degraded" in {w.site for w in ctx.warnings}
        # Single-pole fallback: t50 = ln2 * Elmore tau.
        tau = elmore_delay_ladder(100.0, _sections(), 1e-15)
        assert t50 == pytest.approx(math.log(2.0) * tau, rel=1e-12)

    def test_non_finite_eigenvalues_degrade(self, monkeypatch):
        real_eigh = np.linalg.eigh

        def poisoned(matrix):
            eigvals, eigvecs = real_eigh(matrix)
            return eigvals * np.nan, eigvecs

        monkeypatch.setattr(np.linalg, "eigh", poisoned)
        ladder = RCLadder(100.0, _sections())
        ladder.crossing_time(0.5)
        assert ladder.degraded
        assert "non-finite" in ladder.degraded_reason

    def test_degraded_t50_close_to_healthy_solution(self, monkeypatch):
        healthy = RCLadder(100.0, _sections(), load_c_f=1e-15).crossing_time(0.5)
        monkeypatch.setattr(
            np.linalg,
            "eigh",
            lambda *a, **k: (_ for _ in ()).throw(np.linalg.LinAlgError("x")),
        )
        degraded = RCLadder(100.0, _sections(), load_c_f=1e-15).crossing_time(0.5)
        # The fallback is Elmore-accurate: within 15 % of the exact
        # multi-pole answer for a distributed line.
        assert degraded == pytest.approx(healthy, rel=0.15)

    def test_degraded_t50_matches_elmore_t50_estimate(self, monkeypatch):
        monkeypatch.setattr(
            np.linalg,
            "eigh",
            lambda *a, **k: (_ for _ in ()).throw(np.linalg.LinAlgError("x")),
        )
        ladder = RCLadder(100.0, _sections())
        # ln2 vs the 0.69 engineering constant: ~0.5 % apart.
        assert ladder.crossing_time(0.5) == pytest.approx(
            elmore_t50_ladder(100.0, _sections(), 0.0), rel=0.01
        )

    def test_transient_result_carries_the_flag(self, monkeypatch):
        assert not RCLadder(100.0, _sections()).transient().degraded
        monkeypatch.setattr(
            np.linalg,
            "eigh",
            lambda *a, **k: (_ for _ in ()).throw(np.linalg.LinAlgError("x")),
        )
        assert RCLadder(100.0, _sections()).transient().degraded

    def test_bracket_cap_raises_diagnostic(self):
        class Stuck(RCLadder):
            def output_voltage(self, t_s):
                return 0.0  # never crosses any threshold

        ladder = Stuck(100.0, _sections())
        with pytest.raises(RuntimeError, match="doubling"):
            ladder.crossing_time(0.5)

    def test_simulator_propagates_degraded_flag(self, monkeypatch):
        sim = CircuitSimulator()
        clean = sim.simulate_repeated_wire("global", 1000.0, 2, 40.0)
        assert not clean.degraded
        monkeypatch.setattr(
            np.linalg,
            "eigh",
            lambda *a, **k: (_ for _ in ()).throw(np.linalg.LinAlgError("x")),
        )
        degraded = sim.simulate_repeated_wire("global", 1000.0, 2, 40.0)
        assert degraded.degraded
        # The degraded answer is still Elmore-quality.
        assert degraded.delay_ns == pytest.approx(clean.delay_ns, rel=0.15)


# ---------------------------------------------------------------------------
# Simulation watchdogs
# ---------------------------------------------------------------------------


class _BounceMesh(Mesh):
    """Malicious routing: every route ping-pongs between routers 0 and 1,
    so packets destined anywhere else circulate forever (livelock)."""

    def route(self, src_router, dst_router):
        if src_router == 0:
            return [(0, 1, 2.0)]
        return [(src_router, 0, 2.0)]


class TestWatchdogs:
    def test_flit_livelock_raises_stalled_well_before_horizon(self):
        sim = FlitLevelSimulator(_BounceMesh(16))
        pattern = make_pattern("uniform", 16)
        with pytest.raises(SimulationStalled) as excinfo:
            sim.simulate(
                pattern,
                0.05,
                n_cycles=400,
                stall_cycles=256,
                drain_cycles=200_000,
            )
        snapshot = excinfo.value.snapshot
        assert snapshot["cycle"] < 10_000  # horizon is 200 400 cycles
        assert snapshot["stalled_for"] > 256
        assert snapshot["buffered_flits"] + snapshot["in_flight_flits"] > 0

    def test_healthy_mesh_never_trips_the_watchdog(self):
        sim = FlitLevelSimulator(Mesh(16))
        point = sim.simulate(make_pattern("uniform", 16), 0.02, n_cycles=1000)
        assert point.mean_latency_cycles > 0

    def test_stall_cycles_must_be_positive(self):
        sim = FlitLevelSimulator(Mesh(16))
        with pytest.raises(ValueError, match="stall_cycles"):
            sim.simulate(make_pattern("uniform", 16), 0.02, stall_cycles=0)

    def test_broken_bus_arbiter_raises_stalled(self, monkeypatch):
        import repro.noc.simulator as noc_sim

        class DeafArbiter:
            def __init__(self, n_inputs):
                pass

            def grant(self, requesters):
                return None  # never grants anything

        monkeypatch.setattr(noc_sim, "MatrixArbiter", DeafArbiter)
        sim = NocSimulator(n_cycles=500)
        with pytest.raises(SimulationStalled) as excinfo:
            sim.simulate_bus(
                CryoBusDesign(16), make_pattern("uniform", 16), 0.05,
                hops_per_cycle=12,
            )
        assert "winner" in excinfo.value.snapshot


# ---------------------------------------------------------------------------
# Engine / registry integration
# ---------------------------------------------------------------------------


class TestEngineWarningFlow:
    def _register(self):
        @experiment("_guards_test_warny")
        def _warny() -> ExperimentResult:
            warn("test.extrapolation", "synthetic finding", op=(350.0, None, None))
            result = ExperimentResult("_guards_test_warny", "warny", ("k", "v"))
            result.add_row("a", 1)
            return result

        return _warny

    def test_engine_attaches_warnings_to_results_and_manifest(self, tmp_path):
        self._register()
        try:
            engine = ExecutionEngine(jobs=1, use_cache=False, cache_dir=tmp_path)
            outcome = engine.run(["_guards_test_warny"])
            result = outcome.results["_guards_test_warny"]
            assert [w["site"] for w in result.warnings] == ["test.extrapolation"]
            (record,) = outcome.manifest.records
            assert [w["site"] for w in record.warnings] == ["test.extrapolation"]
            assert outcome.manifest.n_model_warnings == 1
            assert "model warnings 1" in outcome.manifest.summary()
        finally:
            _SPECS.pop("_guards_test_warny", None)

    def test_strict_engine_turns_warnings_into_failures(self, tmp_path):
        self._register()
        try:
            engine = ExecutionEngine(
                jobs=1, use_cache=False, cache_dir=tmp_path, strict=True
            )
            outcome = engine.run(["_guards_test_warny"], keep_going=True)
            assert not outcome.results
            (record,) = outcome.failures
            assert "synthetic finding" in record.error
            assert [w["site"] for w in record.warnings] == ["test.extrapolation"]
        finally:
            _SPECS.pop("_guards_test_warny", None)

    def test_run_experiment_attaches_warnings(self):
        self._register()
        try:
            result = run_experiment("_guards_test_warny")
            assert [w["site"] for w in result.warnings] == ["test.extrapolation"]
        finally:
            _SPECS.pop("_guards_test_warny", None)

    def test_clean_experiment_has_no_warnings(self, tmp_path):
        engine = ExecutionEngine(jobs=1, use_cache=False, cache_dir=tmp_path)
        outcome = engine.run(["fig20"])
        assert outcome.results["fig20"].warnings == []
        assert outcome.manifest.n_model_warnings == 0

    def test_experiment_result_warnings_round_trip(self):
        result = ExperimentResult("x", "t", ("a",), warnings=[{"site": "s"}])
        result.add_row(1)
        assert ExperimentResult.from_dict(result.to_dict()) == result
        assert ExperimentResult.from_json(result.to_json()) == result
