"""Physical-invariant suite: monotonicity laws and the audit sweep."""

import pytest

from repro.tech.metal import FREEPDK45_STACK
from repro.tech.operating_point import OperatingPoint
from repro.tech.wire import CryoWireModel
from repro.util.guards import ModelValidityError
from repro.validation.invariants import (
    DEFAULT_LENGTHS_UM,
    DEFAULT_TEMPERATURES,
    AuditReport,
    InvariantViolation,
    run_audit,
)

LAYERS = sorted(FREEPDK45_STACK.layers)

#: Reduced grid: keeps each audit call fast while still spanning the
#: calibration anchors and a non-trivial length range.
FAST_TEMPS = (77.0, 200.0, 300.0)
FAST_LENGTHS = (500.0, 2000.0, 6000.0)


@pytest.fixture(scope="module")
def model():
    return CryoWireModel()


class TestMonotonicityLaws:
    """Direct parametrized checks of the laws the audit sweeps."""

    @pytest.mark.parametrize("layer", LAYERS)
    def test_resistance_monotone_in_temperature(self, model, layer):
        metal = model.stack.layers[layer]
        values = [
            metal.resistance_per_um(OperatingPoint.at(t))
            for t in DEFAULT_TEMPERATURES
        ]
        assert values == sorted(values)

    @pytest.mark.parametrize("layer", LAYERS)
    def test_unrepeated_delay_monotone_in_temperature(self, model, layer):
        delays = [
            model.unrepeated_delay(layer, 2000.0, OperatingPoint.at(t))
            for t in DEFAULT_TEMPERATURES
        ]
        assert delays == sorted(delays)

    @pytest.mark.parametrize("layer", LAYERS)
    def test_cryo_delay_never_exceeds_room_delay(self, model, layer):
        for length in DEFAULT_LENGTHS_UM:
            cold = model.unrepeated_delay(layer, length, OperatingPoint.at(77.0))
            warm = model.unrepeated_delay(layer, length, OperatingPoint.at(300.0))
            assert cold <= warm

    @pytest.mark.parametrize("layer", LAYERS)
    @pytest.mark.parametrize("temperature", [77.0, 300.0])
    def test_delays_strictly_increase_with_length(self, model, layer, temperature):
        op = OperatingPoint.at(temperature)
        for fn in (model.unrepeated_delay, model.repeated_delay):
            delays = [fn(layer, length, op) for length in DEFAULT_LENGTHS_UM]
            assert all(lo < hi for lo, hi in zip(delays, delays[1:]))


class TestRunAudit:
    def test_clean_on_the_calibrated_domain(self):
        report = run_audit(temperatures=FAST_TEMPS, lengths_um=FAST_LENGTHS)
        assert report.ok
        assert report.violations == ()
        assert report.errors == ()
        assert report.checks > 50
        assert "PASS" in report.to_text()

    def test_out_of_domain_point_fails_with_structured_errors(self):
        report = run_audit(
            temperatures=FAST_TEMPS,
            lengths_um=FAST_LENGTHS,
            extra_points=[(1.0, 0.4, 0.6)],
        )
        assert not report.ok
        messages = [w.message for w in report.errors]
        assert any("hard model range" in m for m in messages)
        assert any("exceed Vth" in m for m in messages)
        assert "FAIL" in report.to_text()

    def test_deep_cryogenic_point_warns_but_passes(self):
        """4 K is a modeled cryostat stage now: the audit describes it
        with a calibration-confidence warning instead of failing."""
        report = run_audit(
            temperatures=FAST_TEMPS,
            lengths_um=FAST_LENGTHS,
            extra_points=[(4.0, 0.8, 0.2)],
        )
        assert report.ok
        assert any("deep-cryogenic" in w.message for w in report.warnings)

    def test_strict_raises_instead_of_reporting(self):
        with pytest.raises(ModelValidityError):
            run_audit(
                temperatures=FAST_TEMPS,
                lengths_um=FAST_LENGTHS,
                extra_points=[(4.0, None, None)],
                strict=True,
            )

    def test_extrapolation_warnings_do_not_fail_the_audit(self):
        # 350 K is inside the hard range but beyond the 300 K anchor:
        # a warning-severity finding, which still audits as PASS.
        report = run_audit(
            temperatures=FAST_TEMPS,
            lengths_um=FAST_LENGTHS,
            extra_points=[(350.0, None, None)],
        )
        assert report.ok
        assert any("extrapolates" in w.message for w in report.warnings)

    def test_duplicate_grid_values_rejected(self):
        with pytest.raises(ValueError):
            run_audit(temperatures=(77.0, 77.0))
        with pytest.raises(ValueError):
            run_audit(lengths_um=(100.0, 100.0))

    def test_report_rendering_includes_violations(self):
        report = AuditReport(
            violations=(InvariantViolation("law", "site", "broke"),),
            warnings=(),
            checks=1,
            temperatures=(77.0,),
            lengths_um=(100.0,),
        )
        text = report.to_text()
        assert "[violation] law @ site: broke" in text
        assert "FAIL" in text


class TestDegradedPathEquivalence:
    """The Elmore fallback must track the exact solver closely enough
    that a degraded run is still quantitatively useful."""

    @pytest.mark.parametrize("layer", LAYERS)
    def test_elmore_within_bound_of_exact_t50(self, layer):
        import numpy as np

        from repro.circuits.rc_line import RCLadder

        metal = FREEPDK45_STACK.layers[layer]
        op = OperatingPoint.at(77.0)
        length = 2000.0
        n = 64
        total_r = metal.resistance_per_um(op) * length
        total_c = metal.capacitance_f_per_um * length * 1e-15
        sections = [(total_r / n, total_c / n)] * n
        exact = RCLadder(120.0, sections, load_c_f=2e-15).crossing_time(0.5)

        broken = RCLadder(120.0, sections, load_c_f=2e-15)
        broken._degrade("forced for equivalence test")
        degraded = broken.crossing_time(0.5)
        assert degraded == pytest.approx(exact, rel=0.15)
