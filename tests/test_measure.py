"""The shared measurement core every latency engine reports through."""

import math

import pytest

from repro.noc.measure import (
    LATENCY_CAP,
    SATURATION_FACTOR,
    LatencyMeter,
    LoadLatencyPoint,
    load_latency_curve,
    saturated_point,
    summarise,
)


class TestLatencyMeter:
    def test_offer_counts_only_after_warmup(self):
        meter = LatencyMeter(warmup=100)
        assert not meter.offer(50)
        assert meter.offer(100)
        assert meter.offer(150)
        assert meter.offered == 2

    def test_deliver_records_latency(self):
        meter = LatencyMeter(warmup=0)
        meter.offer(10)
        meter.deliver(10, 25)
        point = meter.summarise(0.01, zero_load_estimate=10.0)
        assert point.mean_latency_cycles == 15.0
        assert point.delivered_packets == 1
        assert point.acceptance == 1.0

    def test_local_delivery_costs_inject_eject_serialisation(self):
        meter = LatencyMeter(warmup=0)
        meter.offer(0)
        meter.deliver_local(packet_flits=4)
        assert meter.latencies == [5]  # 2 + (4 - 1)

    def test_undelivered_packets_deflate_acceptance(self):
        meter = LatencyMeter(warmup=0)
        for cycle in range(10):
            meter.offer(cycle)
        meter.deliver(0, 5)
        point = meter.summarise(0.01, zero_load_estimate=10.0)
        assert point.acceptance == pytest.approx(0.1)
        assert point.saturated  # > 10 % undelivered

    def test_mean_saturated_tracks_running_mean(self):
        meter = LatencyMeter(warmup=0)
        assert not meter.mean_saturated(5.0)  # nothing delivered yet
        meter.offer(0)
        meter.deliver(0, 4)
        assert not meter.mean_saturated(5.0)
        meter.offer(0)
        meter.deliver(0, int(5.0 * SATURATION_FACTOR * 10))
        assert meter.mean_saturated(5.0)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError):
            LatencyMeter(warmup=-1)


class TestSummarise:
    def test_empty_is_saturated_inf(self):
        point = summarise(0.5, [], offered=10, zero_load_estimate=4.0)
        assert point.saturated
        assert math.isinf(point.mean_latency_cycles)
        assert point.delivered_packets == 0

    def test_unsaturated_point(self):
        point = summarise(0.01, [4, 5, 6], offered=3, zero_load_estimate=5.0)
        assert not point.saturated
        assert point.mean_latency_cycles == 5.0
        assert point.acceptance == 1.0

    def test_capped_latency_property(self):
        point = LoadLatencyPoint(0.5, math.inf, math.inf, 0, 10, True)
        assert point.capped_latency_cycles == LATENCY_CAP


class TestLoadLatencyCurve:
    @staticmethod
    def _fake_engine(log):
        """Saturates at rates >= 0.01."""

        def simulate(injection_rate):
            log.append(injection_rate)
            saturated = injection_rate >= 0.01
            return LoadLatencyPoint(
                injection_rate,
                1e9 if saturated else 10.0,
                1e9 if saturated else 12.0,
                0 if saturated else 100,
                100,
                saturated,
            )

        return simulate

    def test_stops_simulating_past_saturation(self):
        log = []
        points = load_latency_curve(
            self._fake_engine(log), (0.001, 0.005, 0.01, 0.02, 0.04)
        )
        assert log == [0.001, 0.005, 0.01]  # 0.02 / 0.04 synthesised
        assert len(points) == 5
        assert [p.saturated for p in points] == [False, False, True, True, True]
        assert math.isinf(points[-1].mean_latency_cycles)

    def test_out_of_order_rates_below_knee_still_simulated(self):
        log = []
        points = load_latency_curve(
            self._fake_engine(log), (0.02, 0.005, 0.001)
        )
        # 0.02 saturates first, but the lower rates must still run.
        assert log == [0.02, 0.005, 0.001]
        assert [p.saturated for p in points] == [True, False, False]

    def test_opt_out_simulates_everything(self):
        log = []
        load_latency_curve(
            self._fake_engine(log),
            (0.001, 0.01, 0.02),
            stop_on_saturation=False,
        )
        assert log == [0.001, 0.01, 0.02]

    def test_synthesised_point_shape(self):
        point = saturated_point(0.03)
        assert point.saturated
        assert point.offered_packets == 0
        assert point.acceptance == 1.0  # vacuous: nothing was simulated
