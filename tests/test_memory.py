"""Memory substrate: caches, DRAM, hierarchy latency composition."""

import pytest

from repro.memory.cache import (
    CacheDesign,
    FunctionalCache,
    MEMORY_300K,
    MEMORY_77K,
)
from repro.memory.dram import DRAM_300K, DRAM_77K, DramDesign
from repro.memory.hierarchy import MemoryHierarchy
from repro.noc.bus import CryoBusDesign
from repro.noc.latency import AnalyticNocModel, IdealNoc
from repro.noc.topology import Mesh
from repro.pipeline.config import OP_NOC_77K
from repro.tech.constants import T_LN2, T_ROOM


class TestCacheDesigns:
    def test_table4_latencies_300k(self):
        assert MEMORY_300K.l1.latency_cycles_at_4ghz == 4.0
        assert MEMORY_300K.l2.latency_cycles_at_4ghz == 12.0
        assert MEMORY_300K.l3.latency_cycles_at_4ghz == 20.0

    def test_77k_memory_twice_as_fast(self):
        assert MEMORY_77K.l1_latency_ns == pytest.approx(MEMORY_300K.l1_latency_ns / 2)
        assert MEMORY_77K.l3_latency_ns == pytest.approx(MEMORY_300K.l3_latency_ns / 2)

    def test_latency_in_ns(self):
        assert MEMORY_300K.l3_latency_ns == pytest.approx(5.0)


class TestFunctionalCache:
    def test_miss_then_hit(self):
        cache = FunctionalCache(32)
        assert cache.lookup(0x1000) is None
        cache.insert(0x1000, "payload")
        assert cache.lookup(0x1000) == "payload"

    def test_same_line_aliases(self):
        cache = FunctionalCache(32)
        cache.insert(0x1000, "p")
        assert cache.lookup(0x103F) == "p"  # same 64 B line
        assert cache.lookup(0x1040) is None

    def test_lru_eviction_order(self):
        cache = FunctionalCache(32, associativity=2)
        set_stride = cache.n_sets * FunctionalCache.LINE_BYTES
        a, b, c = 0, set_stride, 2 * set_stride  # same set
        cache.insert(a, "a")
        cache.insert(b, "b")
        cache.lookup(a)  # refresh a
        victim = cache.insert(c, "c")
        assert victim is not None
        assert victim[1] == "b"

    def test_invalidate(self):
        cache = FunctionalCache(32)
        cache.insert(0x40, "x")
        assert cache.invalidate(0x40) == "x"
        assert cache.lookup(0x40) is None
        assert cache.invalidate(0x40) is None

    def test_len_counts_lines(self):
        cache = FunctionalCache(32)
        for i in range(10):
            cache.insert(i * 64, i)
        assert len(cache) == 10

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            FunctionalCache(0)
        with pytest.raises(ValueError):
            FunctionalCache(32, associativity=7)  # does not divide lines


class TestDram:
    def test_table4_latencies(self):
        assert DRAM_300K.random_access_ns == pytest.approx(60.32)
        assert DRAM_77K.random_access_ns == pytest.approx(15.84)

    def test_cll_dram_3_8x_faster(self):
        assert DRAM_300K.random_access_ns / DRAM_77K.random_access_ns == pytest.approx(
            3.81, abs=0.05
        )

    def test_queueing_adds_latency(self):
        assert DRAM_77K.access_latency_ns(2.0) > DRAM_77K.access_latency_ns(0.0)

    def test_rejects_negative_queue(self):
        with pytest.raises(ValueError):
            DRAM_77K.access_latency_ns(-1.0)

    def test_rejects_bad_design(self):
        with pytest.raises(ValueError):
            DramDesign("bad", random_access_ns=0.0)


def _mesh_hierarchy(temperature):
    noc = AnalyticNocModel(
        topology=Mesh(64), temperature_k=temperature,
        vdd_v=OP_NOC_77K.vdd_v if temperature < 200 else None,
        vth_v=OP_NOC_77K.vth_v if temperature < 200 else None,
    )
    caches = MEMORY_77K if temperature < 200 else MEMORY_300K
    dram = DRAM_77K if temperature < 200 else DRAM_300K
    return MemoryHierarchy(caches, dram, noc, "directory")


def _cryobus_hierarchy():
    noc = AnalyticNocModel(
        bus=CryoBusDesign(64), temperature_k=T_LN2,
        vdd_v=OP_NOC_77K.vdd_v, vth_v=OP_NOC_77K.vth_v,
    )
    return MemoryHierarchy(MEMORY_77K, DRAM_77K, noc, "snoop")


class TestHierarchy:
    def test_rejects_unknown_protocol(self):
        noc = IdealNoc()
        with pytest.raises(ValueError):
            MemoryHierarchy(MEMORY_77K, DRAM_77K, noc, "token")

    def test_snoop_rejects_router_fabric(self):
        noc = AnalyticNocModel(topology=Mesh(64), temperature_k=T_ROOM)
        with pytest.raises(ValueError):
            MemoryHierarchy(MEMORY_300K, DRAM_300K, noc, "snoop")

    def test_snoop_accepts_ideal_fabric(self):
        MemoryHierarchy(MEMORY_77K, DRAM_77K, IdealNoc(), "snoop")

    def test_miss_costs_more_than_hit(self):
        hierarchy = _mesh_hierarchy(T_LN2)
        assert hierarchy.l3_miss().total_ns > hierarchy.l3_hit().total_ns

    def test_mesh77_hit_is_noc_dominated(self):
        """Fig. 16: NoC takes ~70 % of the 77 K mesh's L3 hit latency."""
        fraction = _mesh_hierarchy(T_LN2).l3_hit().noc_fraction
        assert fraction == pytest.approx(0.717, abs=0.08)

    def test_mesh77_miss_noc_fraction(self):
        fraction = _mesh_hierarchy(T_LN2).l3_miss().noc_fraction
        assert fraction == pytest.approx(0.404, abs=0.15)

    def test_cryobus_hit_beats_mesh(self):
        assert (
            _cryobus_hierarchy().l3_hit().total_ns
            < _mesh_hierarchy(T_LN2).l3_hit().total_ns
        )

    def test_snoop_c2c_avoids_indirection(self):
        """One broadcast vs three directory traversals."""
        mesh = _mesh_hierarchy(T_LN2).cache_to_cache()
        bus = _cryobus_hierarchy().cache_to_cache()
        assert bus.noc_ns < mesh.noc_ns / 2

    def test_barrier_far_cheaper_on_snooping_bus(self):
        mesh = _mesh_hierarchy(T_LN2).barrier_ns(64)
        bus = _cryobus_hierarchy().barrier_ns(64)
        assert bus < mesh / 5

    def test_barrier_zero_for_single_core(self):
        assert _cryobus_hierarchy().barrier_ns(1) == 0.0

    def test_lock_cheaper_on_snooping_bus(self):
        mesh = _mesh_hierarchy(T_LN2).lock_ns()
        bus = _cryobus_hierarchy().lock_ns()
        assert bus < mesh / 5

    def test_lock_rejects_bad_contenders(self):
        with pytest.raises(ValueError):
            _cryobus_hierarchy().lock_ns(contenders=0)

    def test_load_increases_latency(self):
        hierarchy = _cryobus_hierarchy()
        assert hierarchy.l3_hit(0.8).total_ns > hierarchy.l3_hit(0.0).total_ns

    def test_breakdown_addition(self):
        breakdown = _mesh_hierarchy(T_ROOM).l3_miss()
        assert breakdown.total_ns == pytest.approx(
            breakdown.noc_ns + breakdown.cache_ns + breakdown.dram_ns
        )
