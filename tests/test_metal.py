"""Metal layers and the calibrated 45 nm stack."""

import pytest

from repro.tech.constants import T_LN2, T_ROOM
from repro.tech.metal import FREEPDK45_STACK, MetalLayer
from repro.tech.resistivity import CryoResistivityModel


class TestStackStructure:
    def test_three_populations(self):
        assert set(FREEPDK45_STACK.layers) == {"local", "semi_global", "global"}

    def test_properties_alias_layers(self):
        assert FREEPDK45_STACK.local.name == "local"
        assert FREEPDK45_STACK.semi_global.name == "semi_global"
        assert FREEPDK45_STACK.global_.name == "global"

    def test_unknown_layer_raises_with_choices(self):
        with pytest.raises(KeyError, match="semi_global"):
            FREEPDK45_STACK.layer("m3")

    def test_widths_increase_up_the_stack(self):
        assert (
            FREEPDK45_STACK.local.width_um
            < FREEPDK45_STACK.semi_global.width_um
            < FREEPDK45_STACK.global_.width_um
        )

    def test_resistance_decreases_up_the_stack(self):
        assert (
            FREEPDK45_STACK.local.resistance_per_um()
            > FREEPDK45_STACK.semi_global.resistance_per_um()
            > FREEPDK45_STACK.global_.resistance_per_um()
        )


class TestCalibration:
    """The paper's Fig. 5 speed-up anchors (Section 2.3)."""

    def test_local_asymptotic_speedup(self):
        assert FREEPDK45_STACK.local.speedup_at(T_LN2) == pytest.approx(2.95, rel=1e-3)

    def test_semi_global_asymptotic_speedup(self):
        assert FREEPDK45_STACK.semi_global.speedup_at(T_LN2) == pytest.approx(
            3.69, rel=1e-3
        )

    def test_global_near_bulk(self):
        assert FREEPDK45_STACK.global_.speedup_at(T_LN2) == pytest.approx(
            1.0 / 0.21, rel=1e-3
        )

    def test_no_speedup_at_room(self):
        for layer in FREEPDK45_STACK.layers.values():
            assert layer.speedup_at(T_ROOM) == pytest.approx(1.0)

    def test_thinner_wires_benefit_less(self):
        # The size effect freezes out less resistivity in narrow wires.
        assert (
            FREEPDK45_STACK.local.speedup_at(T_LN2)
            < FREEPDK45_STACK.semi_global.speedup_at(T_LN2)
            < FREEPDK45_STACK.global_.speedup_at(T_LN2)
        )


class TestMetalLayerValidation:
    def test_rejects_nonpositive_geometry(self):
        with pytest.raises(ValueError):
            MetalLayer(
                "bad", width_um=0.0, thickness_um=0.1, capacitance_f_per_um=0.2,
                resistivity=CryoResistivityModel(1.0, 0.1),
            )

    def test_rc_per_um2_positive_and_temperature_sensitive(self):
        layer = FREEPDK45_STACK.semi_global
        assert layer.rc_per_um2(T_LN2) < layer.rc_per_um2(T_ROOM)
        assert layer.rc_per_um2(T_LN2) > 0
