"""Cryo-MOSFET drive and leakage model."""

import pytest
from hypothesis import given, strategies as st

from repro.tech.constants import T_LN2, T_ROOM
from repro.tech.mosfet import (
    CryoMOSFET,
    FREEPDK45_CARD,
    INDUSTRY_2Z_CARD,
    MOSFETCard,
)


@pytest.fixture(scope="module")
def logic():
    return CryoMOSFET(FREEPDK45_CARD)


@pytest.fixture(scope="module")
def industry():
    return CryoMOSFET(INDUSTRY_2Z_CARD)


class TestDriveCalibration:
    def test_logic_77k_anchor(self, logic):
        """The paper's 8 % transistor speed-up at 77 K, nominal voltage."""
        assert logic.delay_speedup(T_LN2) == pytest.approx(1.08, rel=1e-6)

    def test_industry_77k_anchor(self, industry):
        assert industry.delay_speedup(T_LN2) == pytest.approx(2.40, rel=1e-6)

    def test_no_speedup_at_room(self, logic):
        assert logic.delay_speedup(T_ROOM) == pytest.approx(1.0)

    def test_speedup_monotone_in_temperature(self, logic):
        speedups = [logic.delay_speedup(t) for t in (300, 250, 200, 150, 100, 77)]
        assert speedups == sorted(speedups)

    def test_chp_voltage_point_faster_than_nominal(self, logic):
        """V scaling at 77 K speeds logic up well beyond the 8 %."""
        chp = logic.delay_speedup(T_LN2, vdd_v=0.75, vth_v=0.25)
        assert chp > 1.25
        assert chp > logic.delay_speedup(T_LN2)

    def test_cryosp_voltage_point(self, logic):
        cryosp = logic.delay_speedup(T_LN2, vdd_v=0.64, vth_v=0.25)
        assert 1.2 < cryosp < 1.4

    def test_vth_rises_when_cooled(self, logic):
        assert logic.effective_vth(T_LN2) > logic.effective_vth(T_ROOM)

    def test_overdrive_collapse_raises(self, logic):
        with pytest.raises(ValueError, match="overdrive"):
            logic.delay_speedup(T_LN2, vdd_v=0.30, vth_v=0.28)


class TestLeakage:
    def test_reference_point_is_unity(self, logic):
        assert logic.leakage_factor(T_ROOM) == pytest.approx(1.0)

    def test_leakage_collapses_at_77k(self, logic):
        assert logic.leakage_factor(T_LN2) < 1e-10

    def test_scaled_vth_safe_only_at_cryo(self, logic):
        """The paper's core claim: V scaling is only feasible cold."""
        cold = logic.leakage_factor(T_LN2, vdd_v=0.64, vth_v=0.25)
        hot = logic.leakage_factor(T_ROOM, vdd_v=0.64, vth_v=0.25)
        assert cold < 1e-5
        assert hot > 50.0

    def test_lower_vth_leaks_more(self, logic):
        assert logic.leakage_factor(T_ROOM, vth_v=0.35) > logic.leakage_factor(
            T_ROOM, vth_v=0.45
        )

    def test_swing_scales_with_temperature(self, logic):
        assert logic.subthreshold_swing(T_LN2) == pytest.approx(
            logic.subthreshold_swing(T_ROOM) * T_LN2 / T_ROOM
        )


class TestCardValidation:
    def test_rejects_vdd_below_vth(self):
        with pytest.raises(ValueError):
            MOSFETCard(
                name="bad", vdd_nominal_v=0.4, vth_nominal_v=0.5,
                overdrive_exponent_300=1.0, overdrive_exponent_77=0.7,
                drive_speedup_77=1.1, vth_shift_77=0.03,
            )

    def test_rejects_nonpositive_speedup(self):
        with pytest.raises(ValueError):
            MOSFETCard(
                name="bad", vdd_nominal_v=1.0, vth_nominal_v=0.3,
                overdrive_exponent_300=1.0, overdrive_exponent_77=0.7,
                drive_speedup_77=0.0, vth_shift_77=0.03,
            )


class TestDriveProperties:
    @given(
        vdd=st.floats(min_value=0.6, max_value=1.25),
        temp=st.floats(min_value=77.0, max_value=300.0),
    )
    def test_on_current_positive(self, logic, vdd, temp):
        assert logic.on_current(temp, vdd_v=vdd, vth_v=0.25) > 0

    @given(temp=st.floats(min_value=77.0, max_value=300.0))
    def test_delay_factor_inverse_of_speedup(self, logic, temp):
        factor = logic.gate_delay_factor(temp)
        speedup = logic.delay_speedup(temp)
        assert factor * speedup == pytest.approx(1.0)

    @given(
        vth=st.floats(min_value=0.25, max_value=0.45),
        temp=st.floats(min_value=77.0, max_value=300.0),
    )
    def test_leakage_monotone_in_vth(self, logic, vth, temp):
        lower = logic.leakage_factor(temp, vth_v=vth - 0.02)
        higher = logic.leakage_factor(temp, vth_v=vth + 0.02)
        assert lower > higher
