"""NoC building blocks: link model, routers, topologies, arbiter, buses."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.arbiter import MatrixArbiter
from repro.noc.bus import CryoBusDesign, HTree, HTreeBus300K, SharedBusDesign
from repro.noc.link import WireLinkModel
from repro.noc.router import RouterModel
from repro.noc.topology import CMesh, FlattenedButterfly, Mesh
from repro.tech.constants import T_LN2, T_ROOM


@pytest.fixture(scope="module")
def links():
    return WireLinkModel()


class TestWireLink:
    def test_4_hops_per_cycle_at_300k(self, links):
        assert links.hops_per_cycle(T_ROOM) == 4

    def test_12_hops_per_cycle_at_77k(self, links):
        assert links.hops_per_cycle(T_LN2) == 12

    def test_2mm_hop_anchor(self, links):
        assert links.hop_delay_ns(T_ROOM) == pytest.approx(0.064, abs=0.010)

    def test_6mm_link_speedup_anchor(self, links):
        """Fig. 10: the CryoBus link gains ~3.05x at 77 K."""
        assert links.speedup(6.0, T_LN2) == pytest.approx(3.05, abs=0.20)

    def test_rejects_nonpositive_length(self, links):
        with pytest.raises(ValueError):
            links.timing(0.0)

    def test_timing_hops_per_cycle_rejects_bad_clock(self, links):
        timing = links.timing(2.0)
        with pytest.raises(ValueError):
            timing.hops_per_cycle(0.0)


class TestRouter:
    def test_marginal_speedup_at_77k(self):
        """Routers are transistor-bound: ~9 % gain at 77 K (Section 5.1)."""
        assert RouterModel().speedup(T_LN2) == pytest.approx(1.093, abs=0.02)

    def test_table4_mesh_frequency(self):
        """77 K mesh at NoC voltage clocks ~5.44 GHz (Table 4)."""
        freq = RouterModel().frequency_ghz(T_LN2, vdd_v=0.55, vth_v=0.225)
        assert freq == pytest.approx(5.44, rel=0.05)

    def test_three_cycle_router_traversal(self):
        slow = RouterModel(pipeline_cycles=3)
        fast = RouterModel(pipeline_cycles=1)
        assert slow.traversal_ns() == pytest.approx(3 * fast.traversal_ns())

    def test_rejects_bad_pipeline(self):
        with pytest.raises(ValueError):
            RouterModel(pipeline_cycles=0)


class TestMesh:
    def test_8x8_average_hops(self):
        """Uniform-random mean hops on an 8x8 mesh is ~5.25-5.4."""
        assert Mesh(64).average_hops() == pytest.approx(5.33, abs=0.15)

    def test_max_hops_is_diameter(self):
        assert Mesh(64).max_hops() == 14

    def test_xy_route_is_dimension_ordered(self):
        mesh = Mesh(64)
        route = mesh.route(0, 63)
        # X moves (stride 1) must precede Y moves (stride 8).
        strides = [abs(b - a) for a, b, _ in route]
        first_y = strides.index(8)
        assert all(s == 8 for s in strides[first_y:])

    def test_route_reaches_destination(self):
        mesh = Mesh(64)
        route = mesh.route(3, 60)
        assert route[0][0] == 3 and route[-1][1] == 60

    def test_hop_length_is_2mm(self):
        assert Mesh(64).hop_length_mm == pytest.approx(2.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            Mesh(60)

    @settings(max_examples=40, deadline=None)
    @given(src=st.integers(0, 63), dst=st.integers(0, 63))
    def test_route_length_is_manhattan(self, src, dst):
        mesh = Mesh(64)
        sx, sy = src % 8, src // 8
        dx, dy = dst % 8, dst // 8
        assert len(mesh.route(src, dst)) == abs(sx - dx) + abs(sy - dy)


class TestConcentratedTopologies:
    def test_cmesh_fewer_routers(self):
        cmesh = CMesh(64)
        assert cmesh.n_routers == 16
        assert cmesh.router_of(0) == cmesh.router_of(3)

    def test_cmesh_fewer_average_hops(self):
        assert CMesh(64).average_hops() < Mesh(64).average_hops()

    def test_fb_at_most_two_hops(self):
        assert FlattenedButterfly(64).max_hops() == 2

    def test_fb_pays_physical_distance(self):
        fb = FlattenedButterfly(64)
        assert fb.max_distance_mm() == pytest.approx(24.0)

    def test_fb_same_router_zero_hops(self):
        fb = FlattenedButterfly(64)
        assert fb.route(fb.router_of(0), fb.router_of(1)) == []


class TestMatrixArbiter:
    def test_single_requester_wins(self):
        assert MatrixArbiter(4).grant([2]) == 2

    def test_empty_grant_is_none(self):
        assert MatrixArbiter(4).grant([]) is None

    def test_round_robin_like_rotation(self):
        arbiter = MatrixArbiter(3)
        winners = [arbiter.grant([0, 1, 2]) for _ in range(3)]
        assert sorted(winners) == [0, 1, 2]

    def test_starvation_freedom_under_full_load(self):
        """Every requester is served within n rounds of continuous load."""
        n = 8
        arbiter = MatrixArbiter(n)
        winners = [arbiter.grant(range(n)) for _ in range(n)]
        assert sorted(winners) == list(range(n))

    def test_winner_yields_priority(self):
        arbiter = MatrixArbiter(2)
        first = arbiter.grant([0, 1])
        second = arbiter.grant([0, 1])
        assert {first, second} == {0, 1}

    def test_out_of_range_requester_raises(self):
        with pytest.raises(ValueError):
            MatrixArbiter(2).grant([5])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sets(st.integers(0, 7), min_size=1), min_size=1, max_size=40))
    def test_winner_always_among_requesters(self, rounds):
        arbiter = MatrixArbiter(8)
        for requests in rounds:
            winner = arbiter.grant(requests)
            assert winner in requests

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=10))
    def test_no_starvation_property(self, n):
        arbiter = MatrixArbiter(n)
        served = set()
        for _ in range(n):
            served.add(arbiter.grant(range(n)))
        assert served == set(range(n))


class TestHTree:
    @pytest.fixture(scope="class")
    def tree(self):
        return HTree(64)

    def test_worst_broadcast_is_12_hops(self, tree):
        """The paper's headline: 12 hops vs 30 on the linear bus."""
        assert tree.worst_broadcast_hops() == 12

    def test_total_wire_less_than_linear_bus(self, tree):
        assert tree.total_wire_hops() < SharedBusDesign(64).total_wire_hops

    def test_every_core_has_a_tap(self, tree):
        for core in range(64):
            assert tree.tap_of(core) in tree._adjacency

    def test_distance_symmetric(self, tree):
        assert tree.distance_hops(0, 63) == tree.distance_hops(63, 0)

    def test_distance_zero_for_shared_tap(self, tree):
        assert tree.distance_hops(0, 1) == 0  # first cores share a tap

    def test_rejects_out_of_range_core(self, tree):
        with pytest.raises(ValueError):
            tree.tap_of(64)

    @settings(max_examples=30, deadline=None)
    @given(source=st.integers(0, 63))
    def test_link_directions_cover_tree(self, tree, source):
        """Dynamic link connection: every segment oriented, all taps
        reachable, no segment driven from both ends."""
        directions = tree.link_directions(source)
        assert len(directions) == len(tree.edges)
        # Follow the directed edges from the source: must reach all taps.
        reached = {tree.tap_of(source)}
        frontier = [tree.tap_of(source)]
        adjacency = {}
        for (frm, to) in directions.values():
            adjacency.setdefault(frm, []).append(to)
        while frontier:
            node = frontier.pop()
            for nxt in adjacency.get(node, []):
                if nxt not in reached:
                    reached.add(nxt)
                    frontier.append(nxt)
        for core in range(64):
            assert tree.tap_of(core) in reached

    @settings(max_examples=20, deadline=None)
    @given(source=st.integers(0, 63))
    def test_broadcast_within_worst_case(self, tree, source):
        assert tree.broadcast_hops(source) <= tree.worst_broadcast_hops()


class TestBusDesigns:
    def test_fig20_broadcast_cycles(self):
        """The Fig. 20 ladder: 8 / 3 / 3 / 1 cycles."""
        bus, cryo, htree = SharedBusDesign(64), CryoBusDesign(64), HTreeBus300K(64)
        assert bus.broadcast_cycles(4) == 8
        assert bus.broadcast_cycles(12) == 3
        assert htree.broadcast_cycles(4) == 3
        assert cryo.broadcast_cycles(12) == 1

    def test_cryobus_control_cycle(self):
        assert CryoBusDesign(64).control_cycles == 1
        assert SharedBusDesign(64).control_cycles == 0

    def test_cryobus_zero_load_latency(self):
        """arb(2) + control(1) + broadcast(1) = 4 cycles."""
        assert CryoBusDesign(64).zero_load_latency_cycles(12) == 4

    def test_interleaving_multiplies_bandwidth(self):
        single = CryoBusDesign(64)
        double = CryoBusDesign(64, interleave_ways=2)
        assert double.saturation_rate(12) == pytest.approx(
            2 * single.saturation_rate(12)
        )

    def test_interleaved_keeps_geometry(self):
        double = SharedBusDesign(64).interleaved(2)
        assert double.broadcast_hops_worst == 30
        assert double.interleave_ways == 2

    def test_worst_case_shared_bus_is_30_hops(self):
        assert SharedBusDesign(64).broadcast_hops_worst == 30

    def test_rejects_bad_hops_per_cycle(self):
        with pytest.raises(ValueError):
            SharedBusDesign(64).broadcast_cycles(0)

    def test_rejects_bad_interleave(self):
        with pytest.raises(ValueError):
            SharedBusDesign(64).interleaved(0)
