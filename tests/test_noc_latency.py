"""Analytic NoC latency models and the hybrid 256-core fabric."""

import math

import pytest

from repro.noc.bus import CryoBusDesign, SharedBusDesign
from repro.noc.hybrid import HybridCryoBus
from repro.noc.latency import AnalyticNocModel, IdealNoc
from repro.noc.simulator import NocSimulator
from repro.noc.topology import Mesh
from repro.noc.traffic import make_pattern
from repro.pipeline.config import OP_NOC_77K
from repro.tech.constants import T_LN2, T_ROOM


@pytest.fixture(scope="module")
def mesh_77k():
    return AnalyticNocModel(
        topology=Mesh(64), temperature_k=T_LN2,
        vdd_v=OP_NOC_77K.vdd_v, vth_v=OP_NOC_77K.vth_v,
    )


@pytest.fixture(scope="module")
def cryobus_model():
    return AnalyticNocModel(
        bus=CryoBusDesign(64), temperature_k=T_LN2,
        vdd_v=OP_NOC_77K.vdd_v, vth_v=OP_NOC_77K.vth_v,
    )


class TestConstruction:
    def test_requires_exactly_one_fabric(self):
        with pytest.raises(ValueError):
            AnalyticNocModel()
        with pytest.raises(ValueError):
            AnalyticNocModel(topology=Mesh(64), bus=SharedBusDesign(64))

    def test_mesh_clock_follows_router(self, mesh_77k):
        assert mesh_77k.clock_ghz == pytest.approx(5.44, rel=0.05)

    def test_bus_uses_reference_clock(self, cryobus_model):
        assert cryobus_model.clock_ghz == pytest.approx(4.0)


class TestZeroLoad:
    def test_mesh_zero_load_cycles(self, mesh_77k):
        breakdown = mesh_77k.one_way(0.0)
        assert 10 < breakdown.base_cycles < 16
        assert breakdown.queueing_cycles == 0.0

    def test_cryobus_zero_load_is_4_cycles(self, cryobus_model):
        assert cryobus_model.one_way(0.0).total_cycles == pytest.approx(4.0)

    def test_cryobus_5x_faster_than_300k_mesh(self, cryobus_model):
        """The paper's headline: five times lower NoC latency."""
        mesh_300 = AnalyticNocModel(topology=Mesh(64), temperature_k=T_ROOM)
        ratio = mesh_300.one_way_ns(0.0) / cryobus_model.one_way_ns(0.0)
        assert 3.0 < ratio < 6.0

    def test_rejects_negative_rate(self, mesh_77k):
        with pytest.raises(ValueError):
            mesh_77k.one_way(-0.1)


class TestContention:
    def test_queueing_grows_with_load(self, cryobus_model):
        low = cryobus_model.one_way(0.1).queueing_cycles
        high = cryobus_model.one_way(0.8).queueing_cycles
        assert high > low >= 0

    def test_saturation_returns_inf(self, cryobus_model):
        sat = cryobus_model.saturation_rate()
        assert cryobus_model.one_way(sat * 1.01).queueing_cycles == math.inf

    def test_cryobus_saturation_is_1_per_cycle(self, cryobus_model):
        assert cryobus_model.saturation_rate() == pytest.approx(1.0)

    def test_mesh_saturation_far_above_bus(self, mesh_77k, cryobus_model):
        assert mesh_77k.saturation_rate() > 10 * cryobus_model.saturation_rate()


class TestAgainstSimulator:
    def test_bus_analytic_matches_sim_at_moderate_load(self, cryobus_model):
        sim = NocSimulator(n_cycles=6000)
        pattern = make_pattern("uniform", 64)
        rate = 0.005  # per node, aggregate 0.32
        point = sim.simulate_bus(
            CryoBusDesign(64), pattern, rate, hops_per_cycle=12
        )
        analytic = cryobus_model.one_way(rate * 64).total_cycles
        assert analytic == pytest.approx(point.mean_latency_cycles, rel=0.25)

    def test_mesh_analytic_matches_sim_at_low_load(self, mesh_77k):
        sim = NocSimulator(n_cycles=4000)
        pattern = make_pattern("uniform", 64)
        point = sim.simulate_router_network(
            Mesh(64), pattern, 0.005, router_cycles=1, hops_per_cycle=12
        )
        analytic = mesh_77k.one_way(0.005 * 64).total_cycles
        assert analytic == pytest.approx(point.mean_latency_cycles, rel=0.30)


class TestIdealNoc:
    def test_zero_everything(self):
        ideal = IdealNoc()
        assert ideal.one_way_ns(0.5) == 0.0
        assert ideal.saturation_rate() == math.inf

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            IdealNoc().one_way(-1.0)


class TestHybridCryoBus:
    @pytest.fixture(scope="class")
    def hybrid(self):
        return HybridCryoBus()

    def test_structure(self, hybrid):
        assert hybrid.cores_per_cluster == 64
        assert hybrid.cluster_of(0) == 0
        assert hybrid.cluster_of(255) == 3

    def test_zero_load_mixes_local_and_remote(self, hybrid):
        local = hybrid.local_bus().zero_load_latency_cycles(12)
        zero = hybrid.zero_load_latency_cycles(12)
        remote = 2 * local + hybrid.global_leg_cycles
        assert local < zero < remote

    def test_latency_grows_with_load(self, hybrid):
        low = hybrid.mean_latency_cycles(0.1, 12)
        high = hybrid.mean_latency_cycles(1.5, 12)
        assert high > low

    def test_saturates_beyond_capacity(self, hybrid):
        sat = hybrid.saturation_rate(12)
        assert hybrid.mean_latency_cycles(sat * 1.05, 12) == math.inf

    def test_scales_beyond_single_cryobus(self, hybrid):
        """Four clusters deliver more aggregate bandwidth than one bus."""
        single = CryoBusDesign(64).saturation_rate(12)
        assert hybrid.saturation_rate(12) > 1.5 * single

    def test_interleaving_helps(self):
        single = HybridCryoBus(interleave_ways=1)
        double = HybridCryoBus(interleave_ways=2)
        assert double.saturation_rate(12) == pytest.approx(
            2 * single.saturation_rate(12)
        )

    def test_simulation_agrees_with_analytic(self, hybrid):
        pattern = make_pattern("uniform", 256)
        rate = 0.002
        point = hybrid.simulate(pattern, rate, 12, n_cycles=5000)
        analytic = hybrid.mean_latency_cycles(rate * 256, 12)
        assert analytic == pytest.approx(point.mean_latency_cycles, rel=0.30)

    def test_rejects_bad_cluster_split(self):
        with pytest.raises(ValueError):
            HybridCryoBus(n_cores=250)

    def test_rejects_out_of_range_core(self, hybrid):
        with pytest.raises(ValueError):
            hybrid.cluster_of(256)
