"""Cycle-level out-of-order core simulation."""

import statistics

import pytest

from repro.core.ipc import IPCModel
from repro.core.ooosim import (
    OooCoreSimulator,
    SyntheticInstructionStream,
    L3_MISS_LATENCY,
)
from repro.pipeline.config import CoreConfig, CRYO_CORE_CONFIG, SKYLAKE_CONFIG
from repro.workloads.profiles import PARSEC_2_1, by_name

N_INSTR = 8000


@pytest.fixture(scope="module")
def baseline():
    return OooCoreSimulator(SKYLAKE_CONFIG)


class TestStreamGeneration:
    def test_deterministic(self):
        profile = by_name("canneal")
        a = SyntheticInstructionStream(profile, seed="s").generate(500)
        b = SyntheticInstructionStream(profile, seed="s").generate(500)
        assert a == b

    def test_sources_precede_consumers(self):
        stream = SyntheticInstructionStream(by_name("ferret")).generate(2000)
        for idx, instr in enumerate(stream):
            assert instr.src1 < idx
            assert instr.src2 < idx

    def test_miss_tiers_match_profile(self):
        profile = by_name("canneal")
        stream = SyntheticInstructionStream(profile).generate(40_000)
        dram = sum(1 for i in stream if i.latency == L3_MISS_LATENCY)
        assert dram / 40.0 == pytest.approx(profile.l3_mpki, rel=0.35)

    def test_mispredict_rate_matches_profile(self):
        profile = by_name("x264")
        stream = SyntheticInstructionStream(profile).generate(40_000)
        mispredicts = sum(i.is_branch_mispredict for i in stream)
        assert mispredicts / 40.0 == pytest.approx(profile.restarts_pki, rel=0.3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SyntheticInstructionStream(by_name("x264")).generate(0)


class TestScheduler:
    def test_ipc_bounded_by_width(self, baseline):
        assert baseline.ipc(by_name("blackscholes"), N_INSTR) <= 8.0

    def test_all_instructions_retire(self, baseline):
        stream = SyntheticInstructionStream(by_name("vips")).generate(2000)
        result = baseline.run(stream)
        assert result.instructions == 2000

    def test_serial_chain_is_ipc_one(self, baseline):
        from repro.core.ooosim import _Instr

        chain = [_Instr(i - 1, -1, 1, False) for i in range(400)]
        result = baseline.run(chain)
        assert result.ipc == pytest.approx(1.0, rel=0.1)

    def test_independent_stream_hits_width(self):
        from repro.core.ooosim import _Instr

        independent = [_Instr(-1, -1, 1, False) for _ in range(4000)]
        result = OooCoreSimulator(SKYLAKE_CONFIG).run(independent)
        assert result.ipc == pytest.approx(8.0, rel=0.05)

    def test_tiny_window_throttles_long_misses(self):
        from repro.core.ooosim import _Instr

        # Every 50th instruction is a DRAM miss; a tiny ROB must stall.
        stream = [
            _Instr(-1, -1, L3_MISS_LATENCY if i % 50 == 0 else 1, False)
            for i in range(4000)
        ]
        big = OooCoreSimulator(SKYLAKE_CONFIG).run(stream).ipc
        tiny_cfg = CoreConfig(
            "tiny", 8, 14, 72, 56, 97, rob_size=16, int_regs=180, fp_regs=168
        )
        tiny = OooCoreSimulator(tiny_cfg).run(stream).ipc
        assert tiny < big * 0.6

    def test_mispredicts_cost_depth(self, baseline):
        from repro.core.ooosim import _Instr

        stream = [
            _Instr(-1, -1, 1, i % 100 == 0) for i in range(4000)
        ]
        shallow = OooCoreSimulator(SKYLAKE_CONFIG).run(stream).ipc
        deep_cfg = SKYLAKE_CONFIG.deepened(10)
        deep = OooCoreSimulator(deep_cfg).run(stream).ipc
        assert deep < shallow

    def test_rejects_empty_stream(self, baseline):
        with pytest.raises(ValueError):
            baseline.run([])


class TestAgainstAnalyticModel:
    """The cycle-level core must confirm the Table 3 IPC sensitivities."""

    def test_superpipelining_cost_confirmed(self):
        rels = []
        for profile in PARSEC_2_1[:6]:
            sim = OooCoreSimulator(SKYLAKE_CONFIG.deepened(3))
            rels.append(sim.relative_ipc(SKYLAKE_CONFIG, profile, N_INSTR))
        mean = statistics.mean(rels)
        analytic = IPCModel().mean_relative_ipc(
            SKYLAKE_CONFIG.deepened(3), SKYLAKE_CONFIG, PARSEC_2_1[:6]
        )
        assert mean == pytest.approx(analytic, abs=0.03)
        assert mean < 1.0

    def test_cryocore_sizing_cost_confirmed(self):
        rels = []
        for profile in PARSEC_2_1[:6]:
            sim = OooCoreSimulator(CRYO_CORE_CONFIG)
            rels.append(sim.relative_ipc(SKYLAKE_CONFIG, profile, N_INSTR))
        mean = statistics.mean(rels)
        assert 0.88 < mean < 0.99  # analytic: ~0.93

    def test_branchier_workloads_pay_more_for_depth(self):
        deep = OooCoreSimulator(SKYLAKE_CONFIG.deepened(3))
        tame = deep.relative_ipc(SKYLAKE_CONFIG, by_name("blackscholes"), N_INSTR)
        branchy = deep.relative_ipc(SKYLAKE_CONFIG, by_name("x264"), N_INSTR)
        assert branchy < tame
