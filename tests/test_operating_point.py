"""OperatingPoint currency and memoized evaluation context.

Two families of guarantees:

* **signature equivalence** -- every converted entry point returns a
  bit-identical result whether called with an
  :class:`~repro.tech.operating_point.OperatingPoint` or with the legacy
  ``(temperature_k, vdd_v, vth_v)`` scalar form;
* **memoization transparency** -- results through a warm
  :class:`~repro.tech.context.TechContext` are bit-identical to a
  disabled (always-recompute) context, including after ``clear()``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.simulator import CircuitSimulator
from repro.memory.cacti import CactiModel
from repro.memory.cll_dram import CllDramModel
from repro.noc.latency import AnalyticNocModel
from repro.noc.link import WireLinkModel
from repro.noc.router import RouterModel
from repro.noc.topology import Mesh
from repro.tech import (
    CryoMOSFET,
    FREEPDK45_CARD,
    FREEPDK45_STACK,
    INDUSTRY_2Z_CARD,
    CryoWireModel,
    OP_77K_NOMINAL,
    OP_NOC_77K,
    OperatingPoint,
    RepeaterOptimizer,
    TechContext,
    as_operating_point,
    clear_context,
    get_context,
    set_context,
    use_context,
)
from repro.tech.constants import T_ROOM

temperatures = st.floats(min_value=77.0, max_value=300.0)
#: Voltage pairs that keep the overdrive above every card's validity floor.
vdds = st.floats(min_value=0.9, max_value=1.25)
vths = st.floats(min_value=0.2, max_value=0.4)


# ----------------------------------------------------------------------
# The OperatingPoint type and the scalar shim
# ----------------------------------------------------------------------
class TestOperatingPoint:
    def test_key_excludes_name(self):
        a = OperatingPoint("a", 77.0, 0.7, 0.25)
        b = OperatingPoint("b", 77.0, 0.7, 0.25)
        assert a.key == b.key
        assert a != b  # names still distinguish the dataclasses

    def test_at_autonames(self):
        assert OperatingPoint.at(77.0).name == "77K"
        assert OperatingPoint.at(77.0, 0.7, 0.25).name == "77K Vdd=0.7 Vth=0.25"

    def test_with_temperature_keeps_voltages(self):
        swept = OP_NOC_77K.with_temperature(150.0)
        assert swept.temperature_k == 150.0
        assert (swept.vdd_v, swept.vth_v) == (OP_NOC_77K.vdd_v, OP_NOC_77K.vth_v)

    def test_vdd_must_exceed_vth(self):
        with pytest.raises(ValueError):
            OperatingPoint("bad", 77.0, 0.2, 0.3)

    def test_is_cryogenic(self):
        assert OP_77K_NOMINAL.is_cryogenic
        assert not OperatingPoint.at(T_ROOM).is_cryogenic

    def test_shim_passthrough_and_defaults(self):
        assert as_operating_point(OP_NOC_77K) is OP_NOC_77K
        assert as_operating_point(None).temperature_k == T_ROOM
        assert as_operating_point(None, default_temperature_k=120.0).temperature_k == 120.0
        coerced = as_operating_point(77, 0.7, 0.25)
        assert coerced.key == (77.0, 0.7, 0.25)

    def test_shim_rejects_point_plus_scalars(self):
        with pytest.raises(TypeError):
            as_operating_point(OP_NOC_77K, vdd_v=0.7)
        with pytest.raises(TypeError):
            as_operating_point(OP_NOC_77K, vth_v=0.25)

    def test_pipeline_reexport_is_same_object(self):
        from repro.pipeline.config import OperatingPoint as PipelineOP

        assert PipelineOP is OperatingPoint


# ----------------------------------------------------------------------
# op-based vs legacy scalar signatures: bit-identical results
# ----------------------------------------------------------------------
class TestSignatureEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(t=temperatures, vdd=vdds, vth=vths)
    def test_mosfet(self, t, vdd, vth):
        mosfet = CryoMOSFET(FREEPDK45_CARD)
        op = OperatingPoint.at(t, vdd, vth)
        assert mosfet.gate_delay_factor(op) == mosfet.gate_delay_factor(t, vdd, vth)
        assert mosfet.leakage_factor(op) == mosfet.leakage_factor(t, vdd, vth)
        assert mosfet.on_current(op) == mosfet.on_current(t, vdd, vth)
        assert mosfet.effective_vth(op) == mosfet.effective_vth(t, vth_v=vth)

    @settings(max_examples=10, deadline=None)
    @given(t=temperatures)
    def test_wires(self, t):
        wires = CryoWireModel()
        op = OperatingPoint.at(t)
        for layer in ("local", "semi_global", "global"):
            assert wires.unrepeated_delay(layer, 500.0, op) == wires.unrepeated_delay(
                layer, 500.0, t
            )
        assert wires.unrepeated_breakdown(
            "semi_global", 1000.0, op
        ) == wires.unrepeated_breakdown("semi_global", 1000.0, t)

    @settings(max_examples=8, deadline=None)
    @given(t=temperatures)
    def test_repeater_and_metal(self, t):
        optimizer = RepeaterOptimizer(
            FREEPDK45_STACK.layer("global"), INDUSTRY_2Z_CARD
        )
        op = OperatingPoint.at(t)
        assert optimizer.optimize(6220.0, op) == optimizer.optimize(6220.0, t)
        layer = FREEPDK45_STACK.layer("global")
        assert layer.resistance_per_um(op) == layer.resistance_per_um(t)

    @settings(max_examples=8, deadline=None)
    @given(t=temperatures)
    def test_noc(self, t):
        links = WireLinkModel()
        router = RouterModel()
        op = OperatingPoint.at(t)
        assert links.hop_delay_ns(op) == links.hop_delay_ns(t)
        assert links.timing(2.0, op) == links.timing(2.0, t)
        assert router.frequency_ghz(op) == router.frequency_ghz(t)
        assert router.traversal_ns(op) == router.traversal_ns(t)

    @settings(max_examples=6, deadline=None)
    @given(t=temperatures)
    def test_circuits_and_memory(self, t):
        sim = CircuitSimulator()
        op = OperatingPoint.at(t)
        assert sim.simulate_repeated_wire(
            "global", 4000.0, 4, 60.0, op
        ) == sim.simulate_repeated_wire("global", 4000.0, 4, 60.0, t)
        cacti = CactiModel()
        assert cacti.optimize(256, op) == cacti.optimize(256, t)
        dram = CllDramModel()
        assert dram.timing(op) == dram.timing(t)

    def test_analytic_noc_model_op_kwarg(self):
        legacy = AnalyticNocModel(
            topology=Mesh(64),
            temperature_k=OP_NOC_77K.temperature_k,
            vdd_v=OP_NOC_77K.vdd_v,
            vth_v=OP_NOC_77K.vth_v,
        )
        modern = AnalyticNocModel(topology=Mesh(64), op=OP_NOC_77K)
        assert modern.clock_ghz == legacy.clock_ghz
        assert modern.hops_per_cycle == legacy.hops_per_cycle
        assert modern.one_way(0.5) == legacy.one_way(0.5)

    def test_analytic_noc_model_rejects_both_forms(self):
        with pytest.raises(TypeError):
            AnalyticNocModel(topology=Mesh(64), op=OP_NOC_77K, temperature_k=77.0)


# ----------------------------------------------------------------------
# Memoization: transparent, observable, clearable
# ----------------------------------------------------------------------
class TestTechContext:
    def test_memoized_results_bit_identical_to_uncached(self):
        op = OperatingPoint.at(77.0, 0.7, 0.25)

        def evaluate():
            wires = CryoWireModel()
            links = WireLinkModel()
            cacti = CactiModel()
            return (
                CryoMOSFET(FREEPDK45_CARD).gate_delay_factor(op),
                CryoMOSFET(FREEPDK45_CARD).leakage_factor(op),
                wires.unrepeated_breakdown("semi_global", 1686.0, op),
                links.timing(2.0, op),
                RouterModel().frequency_ghz(op),
                cacti.optimize(1024, op),
            )

        with use_context(TechContext(enabled=False)):
            uncached = evaluate()
        with use_context(TechContext()) as ctx:
            cold = evaluate()
            warm = evaluate()  # every lookup now hits
            assert ctx.hits > 0
            ctx.clear()
            assert len(ctx) == 0 and ctx.hits == 0
            cleared = evaluate()  # recomputed from scratch
        assert uncached == cold == warm == cleared

    def test_hit_miss_accounting(self):
        with use_context(TechContext()) as ctx:
            mosfet = CryoMOSFET(FREEPDK45_CARD)
            mosfet.gate_delay_factor(77.0)
            assert (ctx.hits, ctx.misses) == (0, 1)
            mosfet.gate_delay_factor(77.0)
            assert (ctx.hits, ctx.misses) == (1, 1)
            # A differently-named but electrically identical point hits.
            mosfet.gate_delay_factor(OperatingPoint("label", 77.0))
            assert (ctx.hits, ctx.misses) == (2, 1)
            stats = ctx.stats()
            assert stats.families["gate_delay"] == (2, 1)
            assert stats.hit_rate == pytest.approx(2 / 3)
            assert "gate_delay" in stats.to_text()

    def test_disabled_context_counts_misses(self):
        with use_context(TechContext(enabled=False)) as ctx:
            mosfet = CryoMOSFET(FREEPDK45_CARD)
            mosfet.gate_delay_factor(77.0)
            mosfet.gate_delay_factor(77.0)
            assert (ctx.hits, ctx.misses) == (0, 2)
            assert len(ctx) == 0

    def test_use_context_restores_previous(self):
        before = get_context()
        with use_context(TechContext()) as ctx:
            assert get_context() is ctx
        assert get_context() is before

    def test_set_context_returns_previous(self):
        before = get_context()
        fresh = TechContext()
        assert set_context(fresh) is before
        try:
            assert get_context() is fresh
        finally:
            set_context(before)

    def test_clear_context_clears_active(self):
        get_context().memo(("test_family", "x"), lambda: 1)
        clear_context()
        assert get_context().stats().lookups == 0
