"""Pipeline package: configs, floorplan, stage model, critical paths."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pipeline.config import (
    CRYO_CORE_CONFIG,
    CoreConfig,
    OP_300K_NOMINAL,
    OP_77K_NOMINAL,
    OperatingPoint,
    SKYLAKE_CONFIG,
)
from repro.pipeline.floorplan import (
    ALU_GEOMETRY,
    REGFILE_GEOMETRY,
    SKYLAKE_FLOORPLAN,
    UnitGeometry,
)
from repro.pipeline.stages import (
    BOOM_STAGES,
    FIG2_STAGES,
    StageKind,
    SUPERPIPELINED_STAGES,
    stage_by_name,
)


class TestCoreConfig:
    def test_skylake_matches_table3(self):
        assert SKYLAKE_CONFIG.issue_width == 8
        assert SKYLAKE_CONFIG.pipeline_depth == 14
        assert SKYLAKE_CONFIG.rob_size == 224
        assert SKYLAKE_CONFIG.int_regs == 180

    def test_cryocore_halved(self):
        assert CRYO_CORE_CONFIG.issue_width == 4
        assert CRYO_CORE_CONFIG.rob_size == 96

    def test_ratios(self):
        assert CRYO_CORE_CONFIG.width_ratio == pytest.approx(0.5)
        assert SKYLAKE_CONFIG.width_ratio == pytest.approx(1.0)

    def test_deepened(self):
        deeper = SKYLAKE_CONFIG.deepened(3)
        assert deeper.pipeline_depth == 17
        assert deeper.issue_width == SKYLAKE_CONFIG.issue_width

    def test_deepened_rejects_negative(self):
        with pytest.raises(ValueError):
            SKYLAKE_CONFIG.deepened(-1)

    def test_rejects_nonpositive_field(self):
        with pytest.raises(ValueError):
            CoreConfig("bad", 0, 14, 72, 56, 97, 224, 180, 168)

    def test_operating_point_rejects_vdd_below_vth(self):
        with pytest.raises(ValueError):
            OperatingPoint("bad", 300.0, vdd_v=0.4, vth_v=0.5)

    def test_cryogenic_flag(self):
        assert OP_77K_NOMINAL.is_cryogenic
        assert not OP_300K_NOMINAL.is_cryogenic


class TestFloorplan:
    def test_table1_geometry(self):
        assert ALU_GEOMETRY.area_um2 == pytest.approx(25_757.0)
        assert REGFILE_GEOMETRY.height_um == pytest.approx(1090.0)

    def test_forwarding_wire_8wide_anchor(self):
        """Table 1: the forwarding wire is ~1686 um for the 8-wide core."""
        length = SKYLAKE_FLOORPLAN.forwarding_wire_length_um(SKYLAKE_CONFIG)
        assert length == pytest.approx(1686.0, abs=10.0)

    def test_forwarding_wire_shrinks_with_cryocore(self):
        length = SKYLAKE_FLOORPLAN.forwarding_wire_length_um(CRYO_CORE_CONFIG)
        assert 850.0 < length < 950.0

    def test_adjacency_is_symmetric(self):
        assert SKYLAKE_FLOORPLAN.are_adjacent("decoder", "rename")
        assert SKYLAKE_FLOORPLAN.are_adjacent("rename", "decoder")

    def test_non_adjacent_units(self):
        assert not SKYLAKE_FLOORPLAN.are_adjacent("alu", "btb")

    def test_unknown_unit_raises(self):
        with pytest.raises(KeyError):
            SKYLAKE_FLOORPLAN.unit("fpu")

    def test_geometry_consistency_enforced(self):
        with pytest.raises(ValueError, match="inconsistent"):
            UnitGeometry("bad", area_um2=100.0, width_um=100.0, height_um=100.0)


class TestStageCatalogue:
    def test_thirteen_stages(self):
        assert len(BOOM_STAGES) == 13

    def test_five_frontend_eight_backend(self):
        frontend = [s for s in BOOM_STAGES if s.kind is StageKind.FRONTEND]
        backend = [s for s in BOOM_STAGES if s.kind is StageKind.BACKEND]
        assert len(frontend) == 5
        assert len(backend) == 8

    def test_forwarding_stages_unpipelinable(self):
        for name in FIG2_STAGES:
            stage = stage_by_name(name)
            assert not stage.pipelinable
            assert stage.unpipelinable_reason

    def test_superpipelined_stages_carry_splits(self):
        for name in SUPERPIPELINED_STAGES:
            assert stage_by_name(name).split is not None

    def test_fetch2_has_no_split(self):
        """The I-cache array access cannot be split (SRAM macro)."""
        assert stage_by_name("fetch2").split is None

    def test_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            stage_by_name("retire")

    def test_width_scaling_shrinks_transistor_delay(self):
        stage = stage_by_name("execute_bypass")
        assert stage.transistor_delay_ps(CRYO_CORE_CONFIG) < stage.transistor_delay_ps(
            SKYLAKE_CONFIG
        )

    def test_wire_spec_scaling_modes(self):
        forwarding = stage_by_name("execute_bypass").wire
        assert forwarding.length_um(SKYLAKE_CONFIG, 1686.0) == pytest.approx(1686.0)
        issue = stage_by_name("issue_select").wire
        full = issue.length_um(SKYLAKE_CONFIG, 0.0)
        shrunk = issue.length_um(CRYO_CORE_CONFIG, 0.0)
        assert shrunk == pytest.approx(full * 72 / 97)


class TestCriticalPath300K:
    def test_baseline_clocks_4ghz(self, pipeline_model):
        report = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_300K_NOMINAL)
        assert report.frequency_ghz == pytest.approx(4.0, rel=0.02)

    def test_backend_forwarding_stage_is_critical(self, pipeline_model):
        report = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_300K_NOMINAL)
        assert report.critical_stage.name in FIG2_STAGES + ("execute_bypass",)
        assert not report.critical_stage.pipelinable

    def test_fig2_wire_fraction_anchor(self, pipeline_model):
        report = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_300K_NOMINAL)
        fractions = [report.stage(n).wire_fraction for n in FIG2_STAGES]
        mean = sum(fractions) / len(fractions)
        assert mean == pytest.approx(0.576, abs=0.04)

    def test_frontend_wire_share_anchor(self, pipeline_model):
        report = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_300K_NOMINAL)
        assert report.mean_wire_fraction(StageKind.FRONTEND) == pytest.approx(
            0.19, abs=0.04
        )

    def test_backend_wire_share_anchor(self, pipeline_model):
        report = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_300K_NOMINAL)
        assert report.mean_wire_fraction(StageKind.BACKEND) == pytest.approx(
            0.45, abs=0.06
        )


class TestCriticalPath77K:
    def test_critical_moves_to_frontend(self, pipeline_model):
        """77K Observation #1: transistor-bound frontend limits frequency."""
        report = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_77K_NOMINAL)
        assert report.critical_stage.kind is StageKind.FRONTEND

    def test_max_delay_reduction_anchor(self, pipeline_model):
        warm = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_300K_NOMINAL)
        cold = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_77K_NOMINAL)
        reduction = 1.0 - cold.max_delay_ps / warm.max_delay_ps
        assert reduction == pytest.approx(0.19, abs=0.03)

    def test_forwarding_stages_collapse(self, pipeline_model):
        """Backend forwarding stages shed far more delay than frontend."""
        warm = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_300K_NOMINAL)
        cold = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_77K_NOMINAL)
        backend_gain = warm.stage("execute_bypass").total_ps / cold.stage(
            "execute_bypass"
        ).total_ps
        frontend_gain = warm.stage("fetch1").total_ps / cold.stage("fetch1").total_ps
        assert backend_gain > frontend_gain + 0.3

    def test_every_stage_faster_cold(self, pipeline_model):
        warm = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_300K_NOMINAL)
        cold = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_77K_NOMINAL)
        for stage in warm.stages:
            assert cold.stage(stage.name).total_ps < stage.total_ps

    def test_unpipelinable_target(self, pipeline_model):
        report = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_77K_NOMINAL)
        target = report.unpipelinable_backend_max_ps()
        assert target < report.max_delay_ps  # frontend above the target


class TestReportAccessors:
    def test_stage_lookup_raises_for_unknown(self, pipeline_model):
        report = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_300K_NOMINAL)
        with pytest.raises(KeyError):
            report.stage("nonexistent")

    def test_wire_fraction_bounds(self, pipeline_model):
        report = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_300K_NOMINAL)
        for stage in report.stages:
            assert 0.0 <= stage.wire_fraction <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(temp=st.floats(min_value=77.0, max_value=300.0))
    def test_frequency_monotone_in_temperature(self, pipeline_model, temp):
        op = OperatingPoint("t", temp, 1.25, 0.47)
        warm = pipeline_model.evaluate(SKYLAKE_CONFIG, OP_300K_NOMINAL)
        cold = pipeline_model.evaluate(SKYLAKE_CONFIG, op)
        assert cold.frequency_ghz >= warm.frequency_ghz - 1e-9
