"""Power models: cooling, core (McPAT-like), NoC (Orion-like)."""

import pytest
from hypothesis import given, strategies as st

from repro.pipeline.config import (
    CRYO_CORE_CONFIG,
    OP_CHP,
    OP_CRYOSP,
    OP_NOC_300K,
    OP_NOC_77K,
    OP_300K_NOMINAL,
    OP_77K_NOMINAL,
    SKYLAKE_CONFIG,
)
from repro.power.cooling import (
    COOLING_OVERHEAD_77K,
    MEASURED_COOLING_OVERHEADS,
    T_AMBIENT,
    CoolingModel,
    carnot_cooling_overhead,
    cooling_overhead,
)
from repro.power.mcpat import CorePowerModel
from repro.power.orion import (
    CRYOBUS_64_PROFILE,
    MESH_64_PROFILE,
    NocPowerModel,
    SHARED_BUS_64_PROFILE,
)


class TestCooling:
    def test_77k_overhead_is_9_65(self):
        assert CoolingModel(77.0).overhead == pytest.approx(COOLING_OVERHEAD_77K)

    def test_carnot_reproduces_measured_77k_value(self):
        """30 % of Carnot at 77 K lands exactly on the measured 9.65."""
        assert carnot_cooling_overhead(77.0) == pytest.approx(9.65, rel=0.01)

    def test_total_power_equation(self):
        """Eq. (2): P_total = 10.65 * P_dev at 77 K."""
        assert CoolingModel(77.0).total_power(1.0) == pytest.approx(10.65)

    def test_no_cooling_at_room(self):
        assert CoolingModel(300.0).overhead == 0.0
        assert CoolingModel(300.0).total_power(5.0) == pytest.approx(5.0)

    def test_overhead_grows_as_temperature_drops(self):
        overheads = [carnot_cooling_overhead(t) for t in (250, 200, 150, 100, 77)]
        assert overheads == sorted(overheads)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            CoolingModel(77.0).total_power(-1.0)

    def test_rejects_bad_carnot_fraction(self):
        with pytest.raises(ValueError):
            carnot_cooling_overhead(77.0, carnot_fraction=0.0)

    @given(temp=st.floats(min_value=65.0, max_value=295.0))
    def test_overhead_positive_below_ambient(self, temp):
        assert carnot_cooling_overhead(temp) > 0.0

    def test_carnot_vanishes_approaching_ambient_from_below(self):
        """CO -> 0+ as T -> T_ambient: the cold plate stops needing work."""
        overheads = [
            carnot_cooling_overhead(T_AMBIENT - dt)
            for dt in (10.0, 1.0, 0.1, 1e-3, 1e-6)
        ]
        assert overheads == sorted(overheads, reverse=True)
        assert all(co > 0.0 for co in overheads)
        assert overheads[-1] == pytest.approx(0.0, abs=1e-7)

    def test_carnot_exactly_zero_at_ambient(self):
        assert carnot_cooling_overhead(T_AMBIENT) == 0.0

    def test_carnot_zero_above_ambient(self):
        assert carnot_cooling_overhead(T_AMBIENT + 50.0) == 0.0

    def test_carnot_finite_below_one_kelvin(self):
        """Sub-1 K is brutal but finite: CO = ((300-T)/T)/eta."""
        co = carnot_cooling_overhead(0.5)
        assert co == pytest.approx(((T_AMBIENT - 0.5) / 0.5) / 0.30)
        assert co < float("inf")

    def test_carnot_rejects_nonpositive_temperature(self):
        for bad in (0.0, -4.0):
            with pytest.raises(ValueError):
                carnot_cooling_overhead(bad)

    def test_carnot_77k_anchor_within_tolerance(self):
        """The 30 %-of-Carnot curve lands on the measured 9.65 +/- 0.1 %."""
        assert carnot_cooling_overhead(77.0) == pytest.approx(9.65, rel=1e-3)


class TestCoolingOverheadProvider:
    """The per-stage provider the thermal layer evaluates."""

    def test_measured_anchor_wins_at_77k(self):
        assert cooling_overhead(77.0) == COOLING_OVERHEAD_77K

    def test_carnot_away_from_anchors(self):
        assert cooling_overhead(135.0) == carnot_cooling_overhead(135.0)

    def test_custom_measured_table(self):
        assert cooling_overhead(4.0, measured={4.0: 500.0}) == 500.0

    def test_anchor_at_or_above_ambient_is_ignored(self):
        """A (nonsense) anchor at ambient must not defeat the zero-CO rule."""
        assert cooling_overhead(300.0, measured={300.0: 7.0}) == 0.0

    def test_77k_table_holds_the_stinger_number(self):
        assert MEASURED_COOLING_OVERHEADS[77.0] == 9.65


class TestCorePower:
    @pytest.fixture(scope="class")
    def model(self):
        return CorePowerModel()

    def test_baseline_normalised_to_one(self, model):
        report = model.baseline_report()
        assert report.device_rel == pytest.approx(1.0, abs=1e-9)
        assert report.cooling_rel == 0.0

    def test_cryocore_sizing_cuts_power_78_percent(self, model):
        """CryoCore's published 77.8 % power reduction (Section 4.5)."""
        full = model.capacitance_rel(SKYLAKE_CONFIG)
        sized = model.capacitance_rel(CRYO_CORE_CONFIG)
        assert sized / full == pytest.approx(0.222, rel=0.05)

    def test_superpipelining_adds_latch_power(self, model):
        deep = model.capacitance_rel(SKYLAKE_CONFIG.deepened(3))
        assert deep > model.capacitance_rel(SKYLAKE_CONFIG)

    def test_static_power_vanishes_at_77k(self, model):
        warm = model.static_rel(SKYLAKE_CONFIG, OP_300K_NOMINAL)
        cold = model.static_rel(SKYLAKE_CONFIG, OP_77K_NOMINAL)
        assert warm == pytest.approx(0.20, abs=0.01)
        assert cold < 1e-10

    def test_cryosp_fits_baseline_envelope(self, model):
        report = model.report(CRYO_CORE_CONFIG.deepened(3), OP_CRYOSP, 7.84)
        assert report.total_rel == pytest.approx(1.0, abs=0.25)
        assert report.device_rel == pytest.approx(0.093, rel=0.30)

    def test_chp_fits_baseline_envelope(self, model):
        report = model.report(CRYO_CORE_CONFIG, OP_CHP, 6.1)
        assert report.total_rel == pytest.approx(1.0, abs=0.15)

    def test_dynamic_scales_with_frequency(self, model):
        slow = model.dynamic_rel(SKYLAKE_CONFIG, OP_300K_NOMINAL, 2.0)
        fast = model.dynamic_rel(SKYLAKE_CONFIG, OP_300K_NOMINAL, 4.0)
        assert fast == pytest.approx(2.0 * slow)

    def test_dynamic_scales_with_vdd_squared(self, model):
        base = model.dynamic_rel(SKYLAKE_CONFIG, OP_300K_NOMINAL, 4.0)
        half_v = model.dynamic_rel(
            SKYLAKE_CONFIG,
            OP_CRYOSP,  # Vdd 0.64
            4.0,
        )
        assert half_v / base == pytest.approx((0.64 / 1.25) ** 2)

    def test_rejects_nonpositive_frequency(self, model):
        with pytest.raises(ValueError):
            model.dynamic_rel(SKYLAKE_CONFIG, OP_300K_NOMINAL, 0.0)


class TestNocPower:
    @pytest.fixture(scope="class")
    def model(self):
        return NocPowerModel()

    def test_300k_mesh_is_reference(self, model):
        report = model.report(MESH_64_PROFILE, OP_NOC_300K)
        assert report.total_rel == pytest.approx(1.0, abs=1e-6)

    def test_fig22_mesh_77k_anchor(self, model):
        report = model.report(MESH_64_PROFILE, OP_NOC_77K)
        assert report.total_rel == pytest.approx(0.72, abs=0.05)

    def test_fig22_shared_bus_anchor(self, model):
        report = model.report(SHARED_BUS_64_PROFILE, OP_NOC_77K)
        assert report.total_rel == pytest.approx(0.617, abs=0.05)

    def test_fig22_cryobus_anchor(self, model):
        report = model.report(CRYOBUS_64_PROFILE, OP_NOC_77K)
        assert report.total_rel == pytest.approx(0.428, abs=0.05)

    def test_fig22_ordering(self, model):
        mesh300 = model.report(MESH_64_PROFILE, OP_NOC_300K).total_rel
        mesh77 = model.report(MESH_64_PROFILE, OP_NOC_77K).total_rel
        bus77 = model.report(SHARED_BUS_64_PROFILE, OP_NOC_77K).total_rel
        cryo = model.report(CRYOBUS_64_PROFILE, OP_NOC_77K).total_rel
        assert cryo < bus77 < mesh77 < mesh300

    def test_static_dominates_at_300k(self, model):
        report = model.report(MESH_64_PROFILE, OP_NOC_300K)
        assert report.static_rel > report.dynamic_rel

    def test_static_eliminated_at_77k(self, model):
        report = model.report(MESH_64_PROFILE, OP_NOC_77K)
        assert report.static_rel < 1e-6

    def test_traffic_scales_dynamic(self, model):
        idle = model.report(MESH_64_PROFILE, OP_NOC_300K, traffic_rel=0.0)
        busy = model.report(MESH_64_PROFILE, OP_NOC_300K, traffic_rel=2.0)
        assert idle.dynamic_rel == 0.0
        assert busy.dynamic_rel > 0.0

    def test_rejects_negative_traffic(self, model):
        with pytest.raises(ValueError):
            model.report(MESH_64_PROFILE, OP_NOC_300K, traffic_rel=-1.0)
