"""Power extensions: geometry-derived NoC profiles, CLL-DRAM, TCO."""

import pytest

from repro.memory.cll_dram import CllDramModel
from repro.memory.dram import DRAM_300K, DRAM_77K
from repro.noc.bus import CryoBusDesign, SharedBusDesign
from repro.noc.topology import Mesh
from repro.pipeline.config import OP_NOC_77K
from repro.power.orion import (
    CRYOBUS_64_PROFILE,
    MESH_64_PROFILE,
    NocPowerModel,
    SHARED_BUS_64_PROFILE,
    profile_from_bus,
    profile_from_mesh,
)
from repro.power.tco import TemperatureOptimizer, default_device_power
from repro.tech.constants import T_LN2, T_ROOM


class TestDerivedNocProfiles:
    """Energy profiles built from geometry match the calibrated ones."""

    def test_mesh_profile_matches(self):
        auto = profile_from_mesh(Mesh(64))
        assert auto.transaction_energy() == pytest.approx(
            MESH_64_PROFILE.transaction_energy(), rel=0.02
        )

    def test_shared_bus_profile_matches(self):
        auto = profile_from_bus(SharedBusDesign(64))
        assert auto.transaction_energy() == pytest.approx(
            SHARED_BUS_64_PROFILE.transaction_energy(), rel=0.02
        )

    def test_cryobus_profile_matches(self):
        auto = profile_from_bus(CryoBusDesign(64), dynamic_links=True)
        assert auto.transaction_energy() == pytest.approx(
            CRYOBUS_64_PROFILE.transaction_energy(), rel=0.05
        )

    def test_dynamic_links_save_energy(self):
        with_links = profile_from_bus(CryoBusDesign(64), dynamic_links=True)
        without = profile_from_bus(CryoBusDesign(64), dynamic_links=False)
        assert with_links.transaction_energy() < without.transaction_energy()

    def test_derived_cryobus_reproduces_fig22(self):
        model = NocPowerModel()
        auto = profile_from_bus(CryoBusDesign(64), dynamic_links=True)
        assert model.report(auto, OP_NOC_77K).total_rel == pytest.approx(
            0.428, abs=0.05
        )


class TestCllDram:
    @pytest.fixture(scope="class")
    def model(self):
        return CllDramModel()

    def test_300k_anchor(self, model):
        assert model.timing(T_ROOM).access_ns == pytest.approx(
            DRAM_300K.random_access_ns, rel=0.01
        )

    def test_77k_emerges_at_3_8x(self, model):
        """Table 4's 3.8x DRAM speed-up emerges from the decomposition."""
        assert model.speedup(T_LN2) == pytest.approx(3.8, abs=0.1)
        assert model.timing(T_LN2).access_ns == pytest.approx(
            DRAM_77K.random_access_ns, rel=0.05
        )

    def test_array_rc_collapses_most(self, model):
        warm, cold = model.timing(T_ROOM), model.timing(T_LN2)
        array_gain = warm.array_rc_ns / cold.array_rc_ns
        periphery_gain = warm.periphery_ns / cold.periphery_ns
        assert array_gain > 3 * periphery_gain

    def test_speedup_monotone(self, model):
        speedups = [model.speedup(t) for t in (250, 200, 150, 100, 77)]
        assert speedups == sorted(speedups)

    def test_rejects_out_of_range(self, model):
        with pytest.raises(ValueError):
            model.timing(10.0)


class TestTemperatureOptimizer:
    @pytest.fixture(scope="class")
    def optimizer(self):
        return TemperatureOptimizer(perf_300k=1.0, perf_77k=2.42)

    def test_paper_claims_hold(self, optimizer):
        """Section 7.4: 100 K beats both 77 K and 300 K on perf/power."""
        at_100 = optimizer.point(100.0).perf_per_power
        assert at_100 > optimizer.point(77.0).perf_per_power
        assert at_100 > optimizer.point(300.0).perf_per_power

    def test_tco_at_most_perf_per_power(self, optimizer):
        for temperature in (77.0, 100.0, 200.0):
            point = optimizer.point(temperature)
            assert point.perf_per_tco <= point.perf_per_power

    def test_optimal_beats_endpoints(self, optimizer):
        best = optimizer.optimal(temperatures=range(77, 301, 4))
        assert best.perf_per_power >= optimizer.point(77.0).perf_per_power
        assert best.perf_per_power >= optimizer.point(300.0).perf_per_power

    def test_device_power_falls_when_cooled(self):
        assert default_device_power(77.0) < 0.3 * default_device_power(300.0)

    def test_rejects_out_of_range_temperature(self, optimizer):
        with pytest.raises(ValueError):
            optimizer.point(50.0)

    def test_rejects_bad_endpoints(self):
        with pytest.raises(ValueError):
            TemperatureOptimizer(perf_300k=0.0, perf_77k=1.0)

    def test_custom_power_function(self):
        flat = TemperatureOptimizer(
            1.0, 2.0, device_power_fn=lambda t: 1.0
        )
        # With flat device power, cooling cost always wins: 300 K optimal.
        best = flat.optimal(temperatures=(77.0, 150.0, 300.0))
        assert best.temperature_k == 300.0
