"""Repeater insertion optimiser."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tech.constants import T_LN2, T_ROOM
from repro.tech.metal import FREEPDK45_STACK
from repro.tech.mosfet import FREEPDK45_CARD, INDUSTRY_2Z_CARD
from repro.tech.repeater import RepeaterOptimizer


@pytest.fixture(scope="module")
def global_opt():
    return RepeaterOptimizer(FREEPDK45_STACK.layer("global"), INDUSTRY_2Z_CARD)


@pytest.fixture(scope="module")
def semi_opt():
    return RepeaterOptimizer(FREEPDK45_STACK.layer("semi_global"), FREEPDK45_CARD)


class TestOptimize:
    def test_2mm_global_link_anchor(self, global_opt):
        """CACTI-NUCA's 0.064 ns for a 2 mm link at 300 K (Section 5.1)."""
        design = global_opt.optimize(2000.0)
        assert design.delay_ns == pytest.approx(0.064, abs=0.010)

    def test_long_wires_get_more_repeaters(self, global_opt):
        short = global_opt.optimize(1000.0)
        long = global_opt.optimize(10000.0)
        assert long.n_repeaters > short.n_repeaters

    def test_optimum_beats_neighbours(self, global_opt):
        design = global_opt.optimize(6220.0)
        for n in (design.n_repeaters - 1, design.n_repeaters + 1):
            if n < 1:
                continue
            alt = global_opt.delay_with(6220.0, n, design.repeater_size)
            assert design.delay_ns <= alt + 1e-12

    def test_delay_monotone_in_length(self, global_opt):
        delays = [global_opt.optimize(length).delay_ns for length in (500, 2000, 8000)]
        assert delays == sorted(delays)

    def test_rejects_nonpositive_length(self, global_opt):
        with pytest.raises(ValueError):
            global_opt.optimize(0.0)

    def test_delay_with_validates_arguments(self, global_opt):
        with pytest.raises(ValueError):
            global_opt.delay_with(1000.0, 0, 10.0)
        with pytest.raises(ValueError):
            global_opt.delay_with(1000.0, 1, 0.5)
        with pytest.raises(ValueError):
            global_opt.delay_with(-1.0, 1, 10.0)


class TestCryogenicSpeedup:
    def test_global_repeated_speedup_anchor(self, global_opt):
        """Fig. 5(b): 6.22 mm repeated global wire reaches ~3.38x."""
        assert global_opt.speedup(6220.0, T_LN2) == pytest.approx(3.38, abs=0.15)

    def test_semi_global_repeated_weaker(self, semi_opt, global_opt):
        """Logic-cell repeaters cap the semi-global repeated gain."""
        semi = semi_opt.speedup(900.0, T_LN2)
        glob = global_opt.speedup(6220.0, T_LN2)
        assert 1.6 < semi < 2.6
        assert semi < glob

    def test_no_speedup_at_room(self, global_opt):
        assert global_opt.speedup(2000.0, T_ROOM) == pytest.approx(1.0)

    def test_cold_reoptimisation_never_hurts(self, global_opt):
        """Re-optimising at 77 K beats reusing the 300 K design."""
        warm = global_opt.optimize(6220.0, T_ROOM)
        cold_reused = global_opt.delay_with(
            6220.0, warm.n_repeaters, warm.repeater_size, T_LN2
        )
        cold_optimal = global_opt.optimize(6220.0, T_LN2).delay_ns
        assert cold_optimal <= cold_reused + 1e-12


class TestDesignRecord:
    def test_per_mm_delay(self, global_opt):
        design = global_opt.optimize(4000.0)
        assert design.delay_per_mm_ns == pytest.approx(design.delay_ns / 4.0)

    def test_is_repeated_flag(self, global_opt):
        assert global_opt.optimize(10000.0).is_repeated
        assert not global_opt.optimize(200.0).is_repeated


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(length=st.floats(min_value=100.0, max_value=20000.0))
    def test_cold_always_at_least_as_fast(self, global_opt, length):
        warm = global_opt.optimize(length, T_ROOM).delay_ns
        cold = global_opt.optimize(length, T_LN2).delay_ns
        assert cold <= warm

    @settings(max_examples=30, deadline=None)
    @given(
        length=st.floats(min_value=100.0, max_value=20000.0),
        temp=st.floats(min_value=77.0, max_value=300.0),
    )
    def test_delay_positive(self, global_opt, length, temp):
        assert global_opt.optimize(length, temp).delay_ns > 0
