"""Temperature-dependent resistivity model."""

import pytest
from hypothesis import given, strategies as st

from repro.tech.constants import T_LN2, T_ROOM
from repro.tech.resistivity import CryoResistivityModel, bloch_gruneisen_ratio


class TestBlochGruneisen:
    def test_unity_at_room(self):
        assert bloch_gruneisen_ratio(T_ROOM) == pytest.approx(1.0)

    def test_bulk_copper_drop_at_77k(self):
        # Pure bulk copper drops to ~12 % of its 300 K phonon resistivity.
        ratio = bloch_gruneisen_ratio(T_LN2)
        assert 0.08 < ratio < 0.18

    def test_monotone_in_temperature(self):
        temps = [77, 100, 150, 200, 250, 300]
        ratios = [bloch_gruneisen_ratio(t) for t in temps]
        assert ratios == sorted(ratios)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            bloch_gruneisen_ratio(10.0)


class TestCryoResistivityModel:
    def test_room_value_preserved(self):
        model = CryoResistivityModel(2.8e-2, residual_fraction=0.2)
        assert model.resistivity(T_ROOM) == pytest.approx(2.8e-2, rel=1e-6)

    def test_residual_floor(self):
        model = CryoResistivityModel(2.8e-2, residual_fraction=0.25)
        # Even at the lowest calibrated temperature the residual remains.
        assert model.ratio_vs_room(77.0) > 0.25

    def test_calibrated_ratio_at_77k(self):
        model = CryoResistivityModel.from_cryo_ratio(2.8e-2, 1.0 / 3.69)
        assert model.ratio_vs_room(T_LN2) == pytest.approx(1.0 / 3.69, rel=1e-6)

    def test_from_ratio_rejects_below_phonon_floor(self):
        with pytest.raises(ValueError):
            CryoResistivityModel.from_cryo_ratio(2.8e-2, 0.05)

    def test_from_ratio_rejects_above_one(self):
        with pytest.raises(ValueError):
            CryoResistivityModel.from_cryo_ratio(2.8e-2, 1.2)

    def test_rejects_bad_residual(self):
        with pytest.raises(ValueError):
            CryoResistivityModel(2.8e-2, residual_fraction=1.0)

    def test_rejects_bad_rho(self):
        with pytest.raises(ValueError):
            CryoResistivityModel(-1.0, residual_fraction=0.1)

    @given(
        residual=st.floats(min_value=0.0, max_value=0.9),
        temp=st.floats(min_value=77.0, max_value=300.0),
    )
    def test_ratio_bounded(self, residual, temp):
        model = CryoResistivityModel(1.0, residual)
        ratio = model.ratio_vs_room(temp)
        assert residual - 1e-9 <= ratio <= 1.0 + 1e-9

    @given(
        t_low=st.floats(min_value=77.0, max_value=200.0),
        delta=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_colder_is_never_more_resistive(self, t_low, delta):
        model = CryoResistivityModel(1.0, 0.2)
        t_high = min(t_low + delta, 300.0)
        assert model.resistivity(t_low) <= model.resistivity(t_high) + 1e-12
