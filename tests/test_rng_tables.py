"""Deterministic RNG helpers and table formatting."""

import numpy as np
import pytest

from repro.util.rng import make_rng
from repro.util.tables import format_table, normalize


class TestMakeRng:
    def test_default_is_deterministic(self):
        a = make_rng().random(8)
        b = make_rng().random(8)
        assert np.array_equal(a, b)

    def test_integer_seed_changes_stream(self):
        assert not np.array_equal(make_rng(1).random(8), make_rng(2).random(8))

    def test_string_seed_is_stable(self):
        assert np.array_equal(
            make_rng("canneal").random(4), make_rng("canneal").random(4)
        )

    def test_streams_are_independent(self):
        base = make_rng("x").random(4)
        streamed = make_rng("x", stream="traffic").random(4)
        assert not np.array_equal(base, streamed)

    def test_same_stream_label_matches(self):
        a = make_rng("x", stream="s").random(4)
        b = make_rng("x", stream="s").random(4)
        assert np.array_equal(a, b)


class TestNormalize:
    def test_normalises_to_reference(self):
        out = normalize({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_missing_reference_raises(self):
        with pytest.raises(KeyError):
            normalize({"a": 1.0}, "z")

    def test_zero_reference_raises(self):
        with pytest.raises(ZeroDivisionError):
            normalize({"a": 0.0, "b": 1.0}, "a")


class TestFormatTable:
    def test_renders_headers_and_rows(self):
        text = format_table(("name", "value"), [("mesh", 1.5)])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "mesh" in lines[2] and "1.500" in lines[2]

    def test_width_adapts_to_content(self):
        text = format_table(("x",), [("a-very-long-cell",)])
        assert "a-very-long-cell" in text

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_custom_float_format(self):
        text = format_table(("v",), [(0.123456,)], float_format="{:.1f}")
        assert "0.1" in text
