"""Robustness study: headline results survive perturbed anchors."""

import pytest

from repro.experiments.robustness import run


@pytest.fixture(scope="module")
def result():
    return run()


class TestRobustness:
    def test_frontend_critical_in_every_variant(self, result):
        assert all(result.column("frontend_critical_at_77k"))

    def test_always_exactly_three_splits(self, result):
        assert set(result.column("stages_split")) == {3}

    def test_cryosp_band(self, result):
        for base, cryo in zip(
            result.column("baseline_ghz"), result.column("cryosp_ghz")
        ):
            assert 1.8 <= cryo / base <= 2.1

    def test_reduction_band(self, result):
        for reduction in result.column("reduction_77k"):
            assert 0.14 <= reduction <= 0.25

    def test_wire_anchor_barely_moves_the_frequency(self, result):
        """A +-10% wire-ratio error shifts CryoSP by ~1%, not 10%."""
        by_variant = {row[0]: row[6] for row in result.rows}
        spread = abs(by_variant["semi_ratio x0.9"] - by_variant["semi_ratio x1.1"])
        assert spread / by_variant["nominal"] < 0.05
