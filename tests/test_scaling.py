"""ITRS node projection."""

import pytest

from repro.tech.scaling import ITRS_ROADMAP, node, project_speedup


class TestRoadmap:
    def test_known_nodes(self):
        assert set(ITRS_ROADMAP) == {45, 32, 22, 14}

    def test_gate_delay_improves(self):
        delays = [node(n).gate_delay_rel for n in (45, 32, 22, 14)]
        assert delays == sorted(delays, reverse=True)

    def test_wire_delay_worsens(self):
        delays = [node(n).wire_delay_rel for n in (45, 32, 22, 14)]
        assert delays == sorted(delays)

    def test_wire_bias_grows(self):
        biases = [node(n).wire_bias for n in (45, 32, 22, 14)]
        assert biases == sorted(biases)

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError, match="known nodes"):
            node(7)


class TestProjectSpeedup:
    def test_identity_at_45nm(self):
        projected = project_speedup(
            1.2, 0.3, 45, transistor_speedup=1.08, wire_speedup=2.0
        )
        expected = 1.0 / (0.3 / 2.0 + 0.7 / 1.08)
        assert projected == pytest.approx(expected)

    def test_wire_bound_nodes_benefit_more(self):
        kwargs = dict(transistor_speedup=1.08, wire_speedup=2.5)
        at_45 = project_speedup(1.2, 0.3, 45, **kwargs)
        at_14 = project_speedup(1.2, 0.3, 14, **kwargs)
        assert at_14 > at_45

    def test_rebalance_damps_projection(self):
        kwargs = dict(transistor_speedup=1.08, wire_speedup=2.5)
        raw = project_speedup(1.2, 0.3, 14, rebalance=1.0, **kwargs)
        damped = project_speedup(1.2, 0.3, 14, rebalance=0.5, **kwargs)
        none = project_speedup(1.2, 0.3, 14, rebalance=0.0, **kwargs)
        assert none < damped < raw

    def test_bounded_by_component_speedups(self):
        projected = project_speedup(
            1.2, 0.5, 14, transistor_speedup=1.05, wire_speedup=3.0
        )
        assert 1.05 <= projected <= 3.0

    def test_pure_wire_path(self):
        projected = project_speedup(
            3.0, 1.0, 22, transistor_speedup=1.08, wire_speedup=3.0
        )
        assert projected == pytest.approx(3.0)

    def test_pure_gate_path(self):
        projected = project_speedup(
            1.08, 0.0, 22, transistor_speedup=1.08, wire_speedup=3.0
        )
        assert projected == pytest.approx(1.08)

    def test_rejects_bad_wire_fraction(self):
        with pytest.raises(ValueError):
            project_speedup(1.2, 1.5, 14, transistor_speedup=1.1, wire_speedup=2.0)

    def test_rejects_bad_components(self):
        with pytest.raises(ValueError):
            project_speedup(1.2, 0.5, 14, transistor_speedup=0.0, wire_speedup=2.0)

    def test_rejects_bad_rebalance(self):
        with pytest.raises(ValueError):
            project_speedup(
                1.2, 0.5, 14,
                transistor_speedup=1.1, wire_speedup=2.0, rebalance=2.0,
            )
