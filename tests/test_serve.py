"""Serve-layer tests: endpoints, batching, failure isolation, parity.

The HTTP tests boot one real server on an ephemeral port per test class
(module-scoped would couple the stats assertions across tests) and talk
to it with ``http.client`` — the serve stack has no test-client shim; it
is cheap enough to exercise for real.

The headline invariants:

* numbers read over HTTP are **bit-identical** to direct library calls
  (the scalar/batch parity invariant carried end-to-end);
* one bad point in a coalesced batch fails only its own request;
* malformed requests come back as structured 4xx payloads, never 500s;
* concurrent clients actually coalesce, and coalescing never changes
  any response.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.experiments.registry import _SPECS, experiment
from repro.serve import (
    MicroBatcher,
    ModelService,
    PointQuery,
    QueryError,
    WireSpec,
    serve_in_thread,
)
from repro.serve.service import parse_point_query
from repro.system.config import CHP_77K_MESH
from repro.system.multicore import MulticoreSystem
from repro.tech import (
    FREEPDK45_CARD,
    CryoWireModel,
    OperatingPoint,
    TechContext,
    cryo_mosfet,
    use_context,
)
from repro.workloads.profiles import by_name as workload_by_name

OP_CRYOSP_VOLTAGES = {"temperature_k": 77.0, "vdd_v": 0.64, "vth_v": 0.25}


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def server():
    handle = serve_in_thread(window_s=0.001)
    yield handle
    handle.stop()


def _request(handle, method, path, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _get(handle, path):
    return _request(handle, "GET", path)


def _post(handle, path, payload):
    return _request(handle, "POST", path, payload)


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = _get(server, "/healthz")
        assert (status, payload) == (200, {"status": "ok"})

    def test_unknown_path_is_404(self, server):
        status, payload = _get(server, "/v1/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_wrong_method_is_405(self, server):
        status, payload = _get(server, "/v1/query")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"

    def test_invalid_json_body_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("POST", "/v1/query", body=b"{not json")
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert payload["error"]["code"] == "invalid_json"

    def test_cards_listing(self, server):
        status, payload = _get(server, "/v1/cards")
        assert status == 200
        assert "freepdk45" in payload["cards"]
        assert "cryo_lowvth" in payload["cards"]
        assert set(payload["wire_layers"]) == {"local", "semi_global", "global"}
        assert "chp_77k_mesh" in payload["systems"]

    def test_experiments_listing(self, server):
        status, payload = _get(server, "/v1/experiments")
        assert status == 200
        ids = [entry["id"] for entry in payload["experiments"]]
        assert "fig02" in ids

    def test_point_query_matches_direct_library_call(self, server):
        status, payload = _post(
            server,
            "/v1/query",
            {"operating_point": dict(OP_CRYOSP_VOLTAGES), "card": "freepdk45"},
        )
        assert status == 200
        op = OperatingPoint.at(77.0, 0.64, 0.25)
        with use_context(TechContext()):
            mosfet = cryo_mosfet(FREEPDK45_CARD)
            expected_delay = mosfet.gate_delay_factor(op)
            expected_leak = mosfet.leakage_factor(op)
            expected_vth = mosfet.effective_vth(op)
        metrics = payload["metrics"]
        # Bit-identical, not approximately equal: the serve layer feeds
        # the same batch kernels the library does, and floats round-trip
        # exactly through JSON.
        assert metrics["gate_delay_factor"] == expected_delay
        assert metrics["delay_speedup"] == 1.0 / expected_delay
        assert metrics["leakage_factor"] == expected_leak
        assert metrics["effective_vth_v"] == expected_vth
        assert metrics["is_cryogenic"] is True
        assert payload["warnings"] == []

    def test_wire_query_matches_direct_optimizer(self, server):
        status, payload = _post(
            server,
            "/v1/query",
            {
                "operating_point": dict(OP_CRYOSP_VOLTAGES),
                "wire": {"layer": "global", "length_um": 6220.0},
            },
        )
        assert status == 200
        with use_context(TechContext()):
            design = CryoWireModel().optimizer("global").optimize(
                6220.0, OperatingPoint.at(77.0, 0.64, 0.25)
            )
        wire = payload["wire"]
        assert wire["delay_ns"] == design.delay_ns
        assert wire["n_repeaters"] == design.n_repeaters
        assert wire["repeater_size"] == design.repeater_size

    def test_malformed_operating_point_is_structured_422(self, server):
        status, payload = _post(
            server, "/v1/query", {"operating_point": {"temperature_k": "cold"}}
        )
        assert status == 422
        assert payload["error"]["code"] == "invalid_operating_point"

    def test_missing_temperature_is_422(self, server):
        status, payload = _post(server, "/v1/query", {"operating_point": {}})
        assert status == 422
        assert payload["error"]["code"] == "invalid_operating_point"

    def test_unknown_card_is_422(self, server):
        status, payload = _post(
            server,
            "/v1/query",
            {"operating_point": {"temperature_k": 77}, "card": "tng_4z"},
        )
        assert status == 422
        assert payload["error"]["code"] == "unknown_card"

    def test_unknown_field_is_422(self, server):
        status, payload = _post(
            server,
            "/v1/query",
            {"operating_point": {"temperature_k": 77}, "temperature": 77},
        )
        assert status == 422
        assert payload["error"]["code"] == "invalid_request"

    def test_out_of_domain_temperature_is_422_with_findings(self, server):
        status, payload = _post(
            server, "/v1/query", {"operating_point": {"temperature_k": 1.0}}
        )
        assert status == 422
        error = payload["error"]
        assert error["code"] == "invalid_operating_point"
        assert any(w["severity"] == "error" for w in error["warnings"])

    def test_deep_cryo_point_redirects_to_cryostat(self, server):
        """[2, 60) K is a valid thermal stage but below the device-model
        calibration floor: a structured verdict, not a silicon answer."""
        status, payload = _post(
            server, "/v1/query", {"operating_point": {"temperature_k": 4.0}}
        )
        assert status == 422
        error = payload["error"]
        assert error["code"] == "model_domain_error"
        assert "/v1/cryostat" in error["message"]
        assert any(w["severity"] == "warning" for w in error["warnings"])

    def test_extrapolation_warning_rides_in_the_payload(self, server):
        status, payload = _post(
            server, "/v1/query", {"operating_point": {"temperature_k": 70.0}}
        )
        assert status == 200
        severities = [w["severity"] for w in payload["warnings"]]
        assert "warning" in severities
        assert all(s != "error" for s in severities)

    def test_grid_query(self, server):
        status, payload = _post(
            server,
            "/v1/grid",
            {"temperature_k": [77.0, 150.0, 300.0], "vdd_v": 0.64, "vth_v": 0.25},
        )
        assert status == 200
        assert payload["n"] == 3
        assert payload["points"]["temperature_k"] == [77.0, 150.0, 300.0]
        with use_context(TechContext()):
            mosfet = cryo_mosfet(FREEPDK45_CARD)
            expected = [
                mosfet.gate_delay_factor(OperatingPoint.at(t, 0.64, 0.25))
                for t in (77.0, 150.0, 300.0)
            ]
        assert payload["metrics"]["gate_delay_factor"] == expected

    def test_grid_product_mode(self, server):
        status, payload = _post(
            server,
            "/v1/grid",
            {
                "mode": "product",
                "temperature_k": [77.0, 300.0],
                "vdd_v": [0.64, 1.0],
                "vth_v": 0.25,
            },
        )
        assert status == 200
        assert payload["n"] == 4

    def test_grid_out_of_domain_is_422(self, server):
        status, payload = _post(
            server, "/v1/grid", {"temperature_k": [77.0, 1.0]}
        )
        assert status == 422
        assert payload["error"]["code"] == "invalid_grid"

    def test_grid_deep_cryo_is_model_domain_error(self, server):
        # 20 K passes validation (deep-cryo warning tier) but the device
        # models refuse it below their 60 K calibration floor.
        status, payload = _post(
            server, "/v1/grid", {"temperature_k": [77.0, 20.0]}
        )
        assert status == 422
        assert payload["error"]["code"] == "model_domain_error"

    def test_cryostat_matches_direct_ledger(self, server):
        from repro.power.tco import cryostat_tco_w
        from repro.thermal import (
            ComponentPlacement,
            Cryostat,
            electrical_link,
            standard_stack,
        )

        status, payload = _post(
            server,
            "/v1/cryostat",
            {
                "links": [
                    {
                        "kind": "electrical",
                        "hot_stage": "300K",
                        "cold_stage": "77K",
                        "lanes": 64,
                    },
                    {
                        "kind": "electrical",
                        "hot_stage": "77K",
                        "cold_stage": "4K",
                        "lanes": 16,
                    },
                ],
                "placements": [
                    {"component": "core", "stage": "77K", "device_power_w": 10.0},
                    {"component": "dram", "stage": "300K", "device_power_w": 20.0},
                    {"component": "qctrl", "stage": "4K", "device_power_w": 0.05},
                ],
            },
        )
        assert status == 200
        direct = Cryostat(
            standard_stack(include_4k=True),
            links=[
                electrical_link("300K", "77K", lanes=64),
                electrical_link("77K", "4K", lanes=16),
            ],
            placements=[
                ComponentPlacement("core", "77K", 10.0),
                ComponentPlacement("dram", "300K", 20.0),
                ComponentPlacement("qctrl", "4K", 0.05),
            ],
        )
        # Bit-identical: the serve layer evaluates the same ledger.
        assert payload["ledger"] == direct.ledger().to_dict()
        assert payload["tco_w"] == cryostat_tco_w(direct)

    def test_cryostat_stage_metrics_skip_deep_cryo_stages(self, server):
        status, payload = _post(
            server,
            "/v1/cryostat",
            {
                "placements": [
                    {"component": "core", "stage": "77K", "device_power_w": 5.0}
                ]
            },
        )
        assert status == 200
        metrics = payload["stage_metrics"]
        # 300 K and 77 K are inside the device-model window; 4 K is a
        # priced thermal stage with no silicon metrics.
        assert set(metrics) == {"300K", "77K"}
        assert all(verdict["ok"] for verdict in metrics.values())
        stage_names = {s["stage"] for s in payload["ledger"]["stages"]}
        assert "4K" in stage_names

    def test_cryostat_without_placements_is_422(self, server):
        status, payload = _post(server, "/v1/cryostat", {"placements": []})
        assert status == 422
        assert payload["error"]["code"] == "invalid_cryostat"

    def test_cryostat_rejects_cold_to_hot_link(self, server):
        status, payload = _post(
            server,
            "/v1/cryostat",
            {
                "links": [
                    {
                        "kind": "electrical",
                        "hot_stage": "4K",
                        "cold_stage": "300K",
                        "lanes": 1,
                    }
                ],
                "placements": [
                    {"component": "core", "stage": "77K", "device_power_w": 1.0}
                ],
            },
        )
        assert status == 422
        assert payload["error"]["code"] == "invalid_cryostat"

    def test_cryostat_queries_counted_in_stats(self, server):
        before = _get(server, "/stats")[1]["requests"]["cryostat_queries"]
        _post(
            server,
            "/v1/cryostat",
            {
                "placements": [
                    {"component": "core", "stage": "77K", "device_power_w": 1.0}
                ]
            },
        )
        after = _get(server, "/stats")[1]["requests"]["cryostat_queries"]
        assert after == before + 1

    def test_ipc_query_matches_direct_evaluation(self, server):
        status, payload = _post(
            server,
            "/v1/ipc",
            {"system": "chp_77k_mesh", "workload": "blackscholes"},
        )
        assert status == 200
        with use_context(TechContext()):
            direct = MulticoreSystem(CHP_77K_MESH).evaluate(
                workload_by_name("blackscholes")
            )
        assert payload["ipc"] == direct.ipc
        assert payload["frequency_ghz"] == direct.frequency_ghz
        if direct.convergence is None:
            assert payload["convergence"] is None
        else:
            assert payload["convergence"]["converged"] == direct.convergence.converged
        assert payload["cpi_stack"]["core"] == direct.cpi_stack.core

    def test_ipc_unknown_system_is_422(self, server):
        status, payload = _post(
            server, "/v1/ipc", {"system": "warp_core", "workload": "blackscholes"}
        )
        assert status == 422
        assert payload["error"]["code"] == "unknown_system"

    def test_experiment_unknown_id_is_422(self, server):
        status, payload = _post(server, "/v1/experiment", {"experiment": "fig99"})
        assert status == 422
        assert payload["error"]["code"] == "unknown_experiment"

    def test_experiment_run_end_to_end(self, server):
        @experiment("_serve_test_exp")
        def _runner(scale=2.0):
            from repro.experiments.base import ExperimentResult

            result = ExperimentResult("_serve_test_exp", "t", ("k", "v"))
            result.add_row("x", scale)
            return result

        try:
            status, payload = _post(
                server,
                "/v1/experiment",
                {"experiment": "_serve_test_exp", "kwargs": {"scale": 3.5}},
            )
        finally:
            del _SPECS["_serve_test_exp"]
        assert status == 200
        assert payload["result"]["rows"] == [["x", 3.5]]
        assert payload["leaked_threads"] == 0

    def test_stats_shape(self, server):
        status, payload = _get(server, "/stats")
        assert status == 200
        assert {"requests", "guards", "tech_context", "engine", "batching", "http"} <= set(payload)
        assert payload["tech_context"]["max_entries"] == 4096
        assert payload["engine"]["leaked_threads"] == 0


class TestConcurrency:
    def test_concurrent_queries_coalesce_and_stay_deterministic(self, server):
        """N clients hammer mixed queries; coalescing must not change
        any answer, and the batcher must actually coalesce."""
        bodies = [
            {
                "operating_point": {
                    "temperature_k": 77.0 + 20.0 * (i % 5),
                    "vdd_v": 0.64 + 0.05 * (i % 3),
                    "vth_v": 0.25,
                },
                "card": ("freepdk45", "industry_2z")[i % 2],
                "wire": {"layer": "global", "length_um": 2000.0 + 500.0 * (i % 4)},
            }
            for i in range(10)
        ]
        # Reference answers, one quiet request at a time.
        references = {}
        for i, body in enumerate(bodies):
            status, payload = _post(server, "/v1/query", body)
            assert status == 200
            references[i] = payload["metrics"]

        answers = []
        lock = threading.Lock()

        def worker():
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=30
            )
            try:
                for i, body in enumerate(bodies):
                    conn.request("POST", "/v1/query", json.dumps(body).encode())
                    response = conn.getresponse()
                    payload = json.loads(response.read())
                    with lock:
                        answers.append((response.status, i, payload))
            finally:
                conn.close()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(answers) == 80
        for status, i, payload in answers:
            assert status == 200
            assert payload["metrics"] == references[i]
        stats = server.stats()
        assert stats["batching"]["coalescing_rate"] > 0.0
        assert stats["batching"]["max_batch_seen"] > 1


class TestFailureIsolation:
    def test_poisoned_point_fails_alone_in_a_coalesced_batch(self):
        """A card-resolved overdrive collapse (invisible to the domain
        pre-screen: vdd rides below the low-Vth card's floor only after
        the cryogenic Vth shift) poisons the vectorized call; the
        service must retry the group scalar-wise and fail only the bad
        query."""
        service = ModelService()
        good = PointQuery(op=OperatingPoint.at(77.0, 0.64, 0.25))
        # cryo_lowvth: vth 0.18 + shift -> overdrive 0.23 - 0.18... pick
        # vdd barely above vth so the resolved overdrive is under 0.05 V
        # but the point itself screens clean (explicit vdd > vth > 0).
        bad = PointQuery(
            op=OperatingPoint.at(77.0, 0.24, 0.18), card_name="cryo_lowvth"
        )
        results = service.evaluate_points([good, bad, good])
        assert [r["ok"] for r in results] == [True, False, True]
        assert results[1]["error"]["code"] == "model_domain_error"
        assert "overdrive" in results[1]["error"]["message"]
        # The good queries' numbers match a clean evaluation exactly
        # (the scalar fallback is the same formula).
        clean = service.evaluate_points([good])[0]
        assert results[0]["metrics"] == clean["metrics"]
        assert service.stats()["requests"]["scalar_fallbacks"] >= 1

    def test_low_vth_card_trips_overdrive_guard_warning(self):
        service = ModelService()
        query = PointQuery(
            op=OperatingPoint.at(77.0, 0.22, 0.18), card_name="cryo_lowvth"
        )
        [result] = service.evaluate_points([query])
        assert result["ok"] is False or any(
            w["severity"] == "warning" for w in result.get("warnings", [])
        )

    def test_parse_rejects_non_object_wire(self):
        with pytest.raises(QueryError) as excinfo:
            parse_point_query(
                {"operating_point": {"temperature_k": 77}, "wire": "global"}
            )
        assert excinfo.value.code == "invalid_wire"


class TestMicroBatcher:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_concurrent_submissions_coalesce(self):
        seen_batches = []

        def evaluate(queries):
            seen_batches.append(len(queries))
            time.sleep(0.005)  # hold the executor so arrivals pile up
            return [q * 2 for q in queries]

        async def scenario():
            batcher = MicroBatcher(evaluate, window_s=0.005)
            batcher.start()
            try:
                results = await asyncio.gather(
                    *(batcher.submit(i) for i in range(10))
                )
            finally:
                await batcher.stop()
            return results

        assert self._run(scenario()) == [i * 2 for i in range(10)]
        assert max(seen_batches) > 1

    def test_disabled_mode_evaluates_singly(self):
        seen_batches = []

        def evaluate(queries):
            seen_batches.append(len(queries))
            return [q for q in queries]

        async def scenario():
            batcher = MicroBatcher(evaluate, enabled=False)
            try:
                return await asyncio.gather(
                    *(batcher.submit(i) for i in range(5))
                )
            finally:
                await batcher.stop()

        assert self._run(scenario()) == list(range(5))
        assert seen_batches == [1] * 5

    def test_evaluate_failure_fans_out_to_waiters(self):
        def evaluate(queries):
            raise RuntimeError("boom")

        async def scenario():
            batcher = MicroBatcher(evaluate, window_s=0.001)
            batcher.start()
            try:
                with pytest.raises(RuntimeError, match="boom"):
                    await batcher.submit(1)
            finally:
                await batcher.stop()

        self._run(scenario())

    def test_max_batch_is_respected(self):
        seen_batches = []

        def evaluate(queries):
            seen_batches.append(len(queries))
            return list(queries)

        async def scenario():
            batcher = MicroBatcher(evaluate, window_s=0.01, max_batch=4)
            batcher.start()
            try:
                await asyncio.gather(*(batcher.submit(i) for i in range(10)))
            finally:
                await batcher.stop()

        self._run(scenario())
        assert max(seen_batches) <= 4

    def test_stats_counters(self):
        def evaluate(queries):
            return list(queries)

        async def scenario():
            batcher = MicroBatcher(evaluate, window_s=0.005)
            batcher.start()
            try:
                await asyncio.gather(*(batcher.submit(i) for i in range(6)))
            finally:
                await batcher.stop()
            return batcher.stats()

        stats = self._run(scenario())
        assert stats["requests"] == 6
        assert stats["points"] == 6
        assert stats["batches"] >= 1
        assert 0.0 <= stats["coalescing_rate"] <= 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda q: q, window_s=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda q: q, max_batch=0)
