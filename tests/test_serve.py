"""Serve-layer tests: endpoints, batching, failure isolation, parity.

The HTTP tests boot one real server on an ephemeral port per test class
(module-scoped would couple the stats assertions across tests) and talk
to it with ``http.client`` — the serve stack has no test-client shim; it
is cheap enough to exercise for real.

The headline invariants:

* numbers read over HTTP are **bit-identical** to direct library calls
  (the scalar/batch parity invariant carried end-to-end);
* one bad point in a coalesced batch fails only its own request;
* malformed requests come back as structured 4xx payloads, never 500s;
* concurrent clients actually coalesce, and coalescing never changes
  any response.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.experiments.registry import _SPECS, experiment
from repro.serve import (
    BatcherClosed,
    DeadlineExceeded,
    MicroBatcher,
    ModelService,
    PointQuery,
    QueryError,
    QueueFull,
    WireSpec,
    serve_in_thread,
)
from repro.serve.overload import Deadline
from repro.serve.service import parse_point_query
from repro.system.config import CHP_77K_MESH
from repro.system.multicore import MulticoreSystem
from repro.tech import (
    FREEPDK45_CARD,
    CryoWireModel,
    OperatingPoint,
    TechContext,
    cryo_mosfet,
    use_context,
)
from repro.workloads.profiles import by_name as workload_by_name

OP_CRYOSP_VOLTAGES = {"temperature_k": 77.0, "vdd_v": 0.64, "vth_v": 0.25}


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def server():
    handle = serve_in_thread(window_s=0.001)
    yield handle
    handle.stop()


def _request(handle, method, path, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _get(handle, path):
    return _request(handle, "GET", path)


def _post(handle, path, payload):
    return _request(handle, "POST", path, payload)


def _request_full(handle, method, path, payload=None, headers=None):
    """Like ``_request`` but sends request headers and returns the
    response headers (lower-cased) — the overload tests check
    ``Retry-After`` and the deadline header."""
    conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        response_headers = {k.lower(): v for k, v in response.getheaders()}
        return response.status, response_headers, json.loads(response.read())
    finally:
        conn.close()


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = _get(server, "/healthz")
        assert (status, payload) == (200, {"status": "ok"})

    def test_unknown_path_is_404(self, server):
        status, payload = _get(server, "/v1/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_wrong_method_is_405(self, server):
        status, payload = _get(server, "/v1/query")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"

    def test_invalid_json_body_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("POST", "/v1/query", body=b"{not json")
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert payload["error"]["code"] == "invalid_json"

    def test_cards_listing(self, server):
        status, payload = _get(server, "/v1/cards")
        assert status == 200
        assert "freepdk45" in payload["cards"]
        assert "cryo_lowvth" in payload["cards"]
        assert set(payload["wire_layers"]) == {"local", "semi_global", "global"}
        assert "chp_77k_mesh" in payload["systems"]

    def test_experiments_listing(self, server):
        status, payload = _get(server, "/v1/experiments")
        assert status == 200
        ids = [entry["id"] for entry in payload["experiments"]]
        assert "fig02" in ids

    def test_point_query_matches_direct_library_call(self, server):
        status, payload = _post(
            server,
            "/v1/query",
            {"operating_point": dict(OP_CRYOSP_VOLTAGES), "card": "freepdk45"},
        )
        assert status == 200
        op = OperatingPoint.at(77.0, 0.64, 0.25)
        with use_context(TechContext()):
            mosfet = cryo_mosfet(FREEPDK45_CARD)
            expected_delay = mosfet.gate_delay_factor(op)
            expected_leak = mosfet.leakage_factor(op)
            expected_vth = mosfet.effective_vth(op)
        metrics = payload["metrics"]
        # Bit-identical, not approximately equal: the serve layer feeds
        # the same batch kernels the library does, and floats round-trip
        # exactly through JSON.
        assert metrics["gate_delay_factor"] == expected_delay
        assert metrics["delay_speedup"] == 1.0 / expected_delay
        assert metrics["leakage_factor"] == expected_leak
        assert metrics["effective_vth_v"] == expected_vth
        assert metrics["is_cryogenic"] is True
        assert payload["warnings"] == []

    def test_wire_query_matches_direct_optimizer(self, server):
        status, payload = _post(
            server,
            "/v1/query",
            {
                "operating_point": dict(OP_CRYOSP_VOLTAGES),
                "wire": {"layer": "global", "length_um": 6220.0},
            },
        )
        assert status == 200
        with use_context(TechContext()):
            design = CryoWireModel().optimizer("global").optimize(
                6220.0, OperatingPoint.at(77.0, 0.64, 0.25)
            )
        wire = payload["wire"]
        assert wire["delay_ns"] == design.delay_ns
        assert wire["n_repeaters"] == design.n_repeaters
        assert wire["repeater_size"] == design.repeater_size

    def test_malformed_operating_point_is_structured_422(self, server):
        status, payload = _post(
            server, "/v1/query", {"operating_point": {"temperature_k": "cold"}}
        )
        assert status == 422
        assert payload["error"]["code"] == "invalid_operating_point"

    def test_missing_temperature_is_422(self, server):
        status, payload = _post(server, "/v1/query", {"operating_point": {}})
        assert status == 422
        assert payload["error"]["code"] == "invalid_operating_point"

    def test_unknown_card_is_422(self, server):
        status, payload = _post(
            server,
            "/v1/query",
            {"operating_point": {"temperature_k": 77}, "card": "tng_4z"},
        )
        assert status == 422
        assert payload["error"]["code"] == "unknown_card"

    def test_unknown_field_is_422(self, server):
        status, payload = _post(
            server,
            "/v1/query",
            {"operating_point": {"temperature_k": 77}, "temperature": 77},
        )
        assert status == 422
        assert payload["error"]["code"] == "invalid_request"

    def test_out_of_domain_temperature_is_422_with_findings(self, server):
        status, payload = _post(
            server, "/v1/query", {"operating_point": {"temperature_k": 1.0}}
        )
        assert status == 422
        error = payload["error"]
        assert error["code"] == "invalid_operating_point"
        assert any(w["severity"] == "error" for w in error["warnings"])

    def test_deep_cryo_point_redirects_to_cryostat(self, server):
        """[2, 60) K is a valid thermal stage but below the device-model
        calibration floor: a structured verdict, not a silicon answer."""
        status, payload = _post(
            server, "/v1/query", {"operating_point": {"temperature_k": 4.0}}
        )
        assert status == 422
        error = payload["error"]
        assert error["code"] == "model_domain_error"
        assert "/v1/cryostat" in error["message"]
        assert any(w["severity"] == "warning" for w in error["warnings"])

    def test_extrapolation_warning_rides_in_the_payload(self, server):
        status, payload = _post(
            server, "/v1/query", {"operating_point": {"temperature_k": 70.0}}
        )
        assert status == 200
        severities = [w["severity"] for w in payload["warnings"]]
        assert "warning" in severities
        assert all(s != "error" for s in severities)

    def test_grid_query(self, server):
        status, payload = _post(
            server,
            "/v1/grid",
            {"temperature_k": [77.0, 150.0, 300.0], "vdd_v": 0.64, "vth_v": 0.25},
        )
        assert status == 200
        assert payload["n"] == 3
        assert payload["points"]["temperature_k"] == [77.0, 150.0, 300.0]
        with use_context(TechContext()):
            mosfet = cryo_mosfet(FREEPDK45_CARD)
            expected = [
                mosfet.gate_delay_factor(OperatingPoint.at(t, 0.64, 0.25))
                for t in (77.0, 150.0, 300.0)
            ]
        assert payload["metrics"]["gate_delay_factor"] == expected

    def test_grid_product_mode(self, server):
        status, payload = _post(
            server,
            "/v1/grid",
            {
                "mode": "product",
                "temperature_k": [77.0, 300.0],
                "vdd_v": [0.64, 1.0],
                "vth_v": 0.25,
            },
        )
        assert status == 200
        assert payload["n"] == 4

    def test_grid_out_of_domain_is_422(self, server):
        status, payload = _post(
            server, "/v1/grid", {"temperature_k": [77.0, 1.0]}
        )
        assert status == 422
        assert payload["error"]["code"] == "invalid_grid"

    def test_grid_deep_cryo_is_model_domain_error(self, server):
        # 20 K passes validation (deep-cryo warning tier) but the device
        # models refuse it below their 60 K calibration floor.
        status, payload = _post(
            server, "/v1/grid", {"temperature_k": [77.0, 20.0]}
        )
        assert status == 422
        assert payload["error"]["code"] == "model_domain_error"

    def test_cryostat_matches_direct_ledger(self, server):
        from repro.power.tco import cryostat_tco_w
        from repro.thermal import (
            ComponentPlacement,
            Cryostat,
            electrical_link,
            standard_stack,
        )

        status, payload = _post(
            server,
            "/v1/cryostat",
            {
                "links": [
                    {
                        "kind": "electrical",
                        "hot_stage": "300K",
                        "cold_stage": "77K",
                        "lanes": 64,
                    },
                    {
                        "kind": "electrical",
                        "hot_stage": "77K",
                        "cold_stage": "4K",
                        "lanes": 16,
                    },
                ],
                "placements": [
                    {"component": "core", "stage": "77K", "device_power_w": 10.0},
                    {"component": "dram", "stage": "300K", "device_power_w": 20.0},
                    {"component": "qctrl", "stage": "4K", "device_power_w": 0.05},
                ],
            },
        )
        assert status == 200
        direct = Cryostat(
            standard_stack(include_4k=True),
            links=[
                electrical_link("300K", "77K", lanes=64),
                electrical_link("77K", "4K", lanes=16),
            ],
            placements=[
                ComponentPlacement("core", "77K", 10.0),
                ComponentPlacement("dram", "300K", 20.0),
                ComponentPlacement("qctrl", "4K", 0.05),
            ],
        )
        # Bit-identical: the serve layer evaluates the same ledger.
        assert payload["ledger"] == direct.ledger().to_dict()
        assert payload["tco_w"] == cryostat_tco_w(direct)

    def test_cryostat_stage_metrics_skip_deep_cryo_stages(self, server):
        status, payload = _post(
            server,
            "/v1/cryostat",
            {
                "placements": [
                    {"component": "core", "stage": "77K", "device_power_w": 5.0}
                ]
            },
        )
        assert status == 200
        metrics = payload["stage_metrics"]
        # 300 K and 77 K are inside the device-model window; 4 K is a
        # priced thermal stage with no silicon metrics.
        assert set(metrics) == {"300K", "77K"}
        assert all(verdict["ok"] for verdict in metrics.values())
        stage_names = {s["stage"] for s in payload["ledger"]["stages"]}
        assert "4K" in stage_names

    def test_cryostat_without_placements_is_422(self, server):
        status, payload = _post(server, "/v1/cryostat", {"placements": []})
        assert status == 422
        assert payload["error"]["code"] == "invalid_cryostat"

    def test_cryostat_rejects_cold_to_hot_link(self, server):
        status, payload = _post(
            server,
            "/v1/cryostat",
            {
                "links": [
                    {
                        "kind": "electrical",
                        "hot_stage": "4K",
                        "cold_stage": "300K",
                        "lanes": 1,
                    }
                ],
                "placements": [
                    {"component": "core", "stage": "77K", "device_power_w": 1.0}
                ],
            },
        )
        assert status == 422
        assert payload["error"]["code"] == "invalid_cryostat"

    def test_cryostat_queries_counted_in_stats(self, server):
        before = _get(server, "/stats")[1]["requests"]["cryostat_queries"]
        _post(
            server,
            "/v1/cryostat",
            {
                "placements": [
                    {"component": "core", "stage": "77K", "device_power_w": 1.0}
                ]
            },
        )
        after = _get(server, "/stats")[1]["requests"]["cryostat_queries"]
        assert after == before + 1

    def test_ipc_query_matches_direct_evaluation(self, server):
        status, payload = _post(
            server,
            "/v1/ipc",
            {"system": "chp_77k_mesh", "workload": "blackscholes"},
        )
        assert status == 200
        with use_context(TechContext()):
            direct = MulticoreSystem(CHP_77K_MESH).evaluate(
                workload_by_name("blackscholes")
            )
        assert payload["ipc"] == direct.ipc
        assert payload["frequency_ghz"] == direct.frequency_ghz
        if direct.convergence is None:
            assert payload["convergence"] is None
        else:
            assert payload["convergence"]["converged"] == direct.convergence.converged
        assert payload["cpi_stack"]["core"] == direct.cpi_stack.core

    def test_ipc_unknown_system_is_422(self, server):
        status, payload = _post(
            server, "/v1/ipc", {"system": "warp_core", "workload": "blackscholes"}
        )
        assert status == 422
        assert payload["error"]["code"] == "unknown_system"

    def test_experiment_unknown_id_is_422(self, server):
        status, payload = _post(server, "/v1/experiment", {"experiment": "fig99"})
        assert status == 422
        assert payload["error"]["code"] == "unknown_experiment"

    def test_experiment_run_end_to_end(self, server):
        @experiment("_serve_test_exp")
        def _runner(scale=2.0):
            from repro.experiments.base import ExperimentResult

            result = ExperimentResult("_serve_test_exp", "t", ("k", "v"))
            result.add_row("x", scale)
            return result

        try:
            status, payload = _post(
                server,
                "/v1/experiment",
                {"experiment": "_serve_test_exp", "kwargs": {"scale": 3.5}},
            )
        finally:
            del _SPECS["_serve_test_exp"]
        assert status == 200
        assert payload["result"]["rows"] == [["x", 3.5]]
        assert payload["leaked_threads"] == 0

    def test_stats_shape(self, server):
        status, payload = _get(server, "/stats")
        assert status == 200
        assert {"requests", "guards", "tech_context", "engine", "batching", "http"} <= set(payload)
        assert payload["tech_context"]["max_entries"] == 4096
        assert payload["engine"]["leaked_threads"] == 0


class TestConcurrency:
    def test_concurrent_queries_coalesce_and_stay_deterministic(self, server):
        """N clients hammer mixed queries; coalescing must not change
        any answer, and the batcher must actually coalesce."""
        bodies = [
            {
                "operating_point": {
                    "temperature_k": 77.0 + 20.0 * (i % 5),
                    "vdd_v": 0.64 + 0.05 * (i % 3),
                    "vth_v": 0.25,
                },
                "card": ("freepdk45", "industry_2z")[i % 2],
                "wire": {"layer": "global", "length_um": 2000.0 + 500.0 * (i % 4)},
            }
            for i in range(10)
        ]
        # Reference answers, one quiet request at a time.
        references = {}
        for i, body in enumerate(bodies):
            status, payload = _post(server, "/v1/query", body)
            assert status == 200
            references[i] = payload["metrics"]

        answers = []
        lock = threading.Lock()

        def worker():
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=30
            )
            try:
                for i, body in enumerate(bodies):
                    conn.request("POST", "/v1/query", json.dumps(body).encode())
                    response = conn.getresponse()
                    payload = json.loads(response.read())
                    with lock:
                        answers.append((response.status, i, payload))
            finally:
                conn.close()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(answers) == 80
        for status, i, payload in answers:
            assert status == 200
            assert payload["metrics"] == references[i]
        stats = server.stats()
        assert stats["batching"]["coalescing_rate"] > 0.0
        assert stats["batching"]["max_batch_seen"] > 1


class TestFailureIsolation:
    def test_poisoned_point_fails_alone_in_a_coalesced_batch(self):
        """A card-resolved overdrive collapse (invisible to the domain
        pre-screen: vdd rides below the low-Vth card's floor only after
        the cryogenic Vth shift) poisons the vectorized call; the
        service must retry the group scalar-wise and fail only the bad
        query."""
        service = ModelService()
        good = PointQuery(op=OperatingPoint.at(77.0, 0.64, 0.25))
        # cryo_lowvth: vth 0.18 + shift -> overdrive 0.23 - 0.18... pick
        # vdd barely above vth so the resolved overdrive is under 0.05 V
        # but the point itself screens clean (explicit vdd > vth > 0).
        bad = PointQuery(
            op=OperatingPoint.at(77.0, 0.24, 0.18), card_name="cryo_lowvth"
        )
        results = service.evaluate_points([good, bad, good])
        assert [r["ok"] for r in results] == [True, False, True]
        assert results[1]["error"]["code"] == "model_domain_error"
        assert "overdrive" in results[1]["error"]["message"]
        # The good queries' numbers match a clean evaluation exactly
        # (the scalar fallback is the same formula).
        clean = service.evaluate_points([good])[0]
        assert results[0]["metrics"] == clean["metrics"]
        assert service.stats()["requests"]["scalar_fallbacks"] >= 1

    def test_low_vth_card_trips_overdrive_guard_warning(self):
        service = ModelService()
        query = PointQuery(
            op=OperatingPoint.at(77.0, 0.22, 0.18), card_name="cryo_lowvth"
        )
        [result] = service.evaluate_points([query])
        assert result["ok"] is False or any(
            w["severity"] == "warning" for w in result.get("warnings", [])
        )

    def test_parse_rejects_non_object_wire(self):
        with pytest.raises(QueryError) as excinfo:
            parse_point_query(
                {"operating_point": {"temperature_k": 77}, "wire": "global"}
            )
        assert excinfo.value.code == "invalid_wire"


class TestMicroBatcher:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_concurrent_submissions_coalesce(self):
        seen_batches = []

        def evaluate(queries):
            seen_batches.append(len(queries))
            time.sleep(0.005)  # hold the executor so arrivals pile up
            return [q * 2 for q in queries]

        async def scenario():
            batcher = MicroBatcher(evaluate, window_s=0.005)
            batcher.start()
            try:
                results = await asyncio.gather(
                    *(batcher.submit(i) for i in range(10))
                )
            finally:
                await batcher.stop()
            return results

        assert self._run(scenario()) == [i * 2 for i in range(10)]
        assert max(seen_batches) > 1

    def test_disabled_mode_evaluates_singly(self):
        seen_batches = []

        def evaluate(queries):
            seen_batches.append(len(queries))
            return [q for q in queries]

        async def scenario():
            batcher = MicroBatcher(evaluate, enabled=False)
            try:
                return await asyncio.gather(
                    *(batcher.submit(i) for i in range(5))
                )
            finally:
                await batcher.stop()

        assert self._run(scenario()) == list(range(5))
        assert seen_batches == [1] * 5

    def test_evaluate_failure_fans_out_to_waiters(self):
        def evaluate(queries):
            raise RuntimeError("boom")

        async def scenario():
            batcher = MicroBatcher(evaluate, window_s=0.001)
            batcher.start()
            try:
                with pytest.raises(RuntimeError, match="boom"):
                    await batcher.submit(1)
            finally:
                await batcher.stop()

        self._run(scenario())

    def test_max_batch_is_respected(self):
        seen_batches = []

        def evaluate(queries):
            seen_batches.append(len(queries))
            return list(queries)

        async def scenario():
            batcher = MicroBatcher(evaluate, window_s=0.01, max_batch=4)
            batcher.start()
            try:
                await asyncio.gather(*(batcher.submit(i) for i in range(10)))
            finally:
                await batcher.stop()

        self._run(scenario())
        assert max(seen_batches) <= 4

    def test_stats_counters(self):
        def evaluate(queries):
            return list(queries)

        async def scenario():
            batcher = MicroBatcher(evaluate, window_s=0.005)
            batcher.start()
            try:
                await asyncio.gather(*(batcher.submit(i) for i in range(6)))
            finally:
                await batcher.stop()
            return batcher.stats()

        stats = self._run(scenario())
        assert stats["requests"] == 6
        assert stats["points"] == 6
        assert stats["batches"] >= 1
        assert 0.0 <= stats["coalescing_rate"] <= 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda q: q, window_s=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda q: q, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda q: q, max_queue=0)


class TestMicroBatcherDrain:
    """The stop() drain semantics: flush, force, refuse, bound."""

    def _run(self, coro):
        return asyncio.run(coro)

    def test_stop_flushes_pending_work(self):
        """Entries still queued when stop() is called are evaluated, not
        dropped: the drain flushes before the worker exits."""

        def evaluate(queries):
            return [q * 2 for q in queries]

        async def scenario():
            # A long window guarantees the entries are still pending
            # when stop() arrives — stop must skip the window and flush.
            batcher = MicroBatcher(evaluate, window_s=5.0)
            batcher.start()
            tasks = [
                asyncio.get_running_loop().create_task(batcher.submit(i))
                for i in range(5)
            ]
            await asyncio.sleep(0)  # let every submit enqueue
            record = await batcher.stop(drain_timeout_s=5.0)
            results = await asyncio.gather(*tasks)
            return record, results

        record, results = self._run(scenario())
        assert results == [i * 2 for i in range(5)]
        assert record["outcome"] == "drained"
        assert record["pending_at_stop"] == 5
        assert record["failed"] == 0

    def test_forced_stop_fails_unresolved_futures_structured(self):
        """A drain that cannot finish in time fails every unresolved
        future with BatcherClosed — waiters get a structured error, not
        an eternal await."""
        release = threading.Event()

        def evaluate(queries):
            release.wait(5.0)
            return list(queries)

        async def scenario():
            batcher = MicroBatcher(evaluate, window_s=0.0)
            batcher.start()
            loop = asyncio.get_running_loop()
            first = loop.create_task(batcher.submit("wedged"))
            await asyncio.sleep(0.05)  # worker picks it up and blocks
            queued = loop.create_task(batcher.submit("queued"))
            await asyncio.sleep(0)
            record = await batcher.stop(drain_timeout_s=0.05)
            outcomes = await asyncio.gather(
                first, queued, return_exceptions=True
            )
            release.set()
            return record, outcomes

        record, outcomes = self._run(scenario())
        assert record["outcome"] == "forced"
        assert record["failed"] == 2
        assert all(isinstance(o, BatcherClosed) for o in outcomes)

    def test_submit_after_stop_is_refused(self):
        async def scenario():
            batcher = MicroBatcher(lambda q: list(q), window_s=0.0)
            batcher.start()
            await batcher.stop()
            with pytest.raises(BatcherClosed):
                await batcher.submit(1)

        self._run(scenario())

    def test_poisoned_batch_failure_races_drain(self):
        """The poisoned-batch fan-out (evaluate raises for the whole
        chunk) racing a concurrent stop(): every waiter sees the
        evaluation error, none is abandoned, and the drain still
        reports a clean flush."""

        def evaluate(queries):
            time.sleep(0.02)
            raise ValueError("poisoned batch")

        async def scenario():
            batcher = MicroBatcher(evaluate, window_s=0.01)
            batcher.start()
            loop = asyncio.get_running_loop()
            tasks = [loop.create_task(batcher.submit(i)) for i in range(3)]
            await asyncio.sleep(0)
            record = await batcher.stop(drain_timeout_s=5.0)
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            return record, outcomes

        record, outcomes = self._run(scenario())
        assert record["outcome"] == "drained"
        assert record["failed"] == 0  # resolved by fan-out, not by force
        assert all(
            isinstance(o, ValueError) and "poisoned" in str(o)
            for o in outcomes
        )

    def test_queue_bound_sheds_queue_full(self):
        release = threading.Event()

        def evaluate(queries):
            release.wait(5.0)
            return list(queries)

        async def scenario():
            batcher = MicroBatcher(evaluate, window_s=0.0, max_queue=2)
            batcher.start()
            loop = asyncio.get_running_loop()
            busy = loop.create_task(batcher.submit("busy"))
            await asyncio.sleep(0.05)  # worker drains it and blocks
            queued = [loop.create_task(batcher.submit(i)) for i in range(2)]
            await asyncio.sleep(0)
            with pytest.raises(QueueFull):
                await batcher.submit("one too many")
            release.set()
            await asyncio.gather(busy, *queued)
            return batcher.stats()

        stats = self._run(scenario())
        assert stats["shed_queue_full"] == 1

    def test_expired_deadline_is_shed_before_kernel_work(self):
        evaluated = []

        def evaluate(queries):
            evaluated.extend(queries)
            return list(queries)

        async def scenario():
            batcher = MicroBatcher(evaluate, window_s=0.05)
            batcher.start()
            loop = asyncio.get_running_loop()
            doomed = loop.create_task(
                batcher.submit("doomed", deadline=Deadline(1.0))
            )
            fine = loop.create_task(batcher.submit("fine"))
            await asyncio.sleep(0.01)  # budget (1 ms) expires while queued
            outcomes = await asyncio.gather(
                doomed, fine, return_exceptions=True
            )
            await batcher.stop()
            return outcomes

        doomed_outcome, fine_outcome = self._run(scenario())
        assert isinstance(doomed_outcome, DeadlineExceeded)
        assert fine_outcome == "fine"
        # The expired entry never reached the evaluate hook.
        assert evaluated == ["fine"]


class TestOverloadControls:
    """Deadlines, admission, readiness — the non-chaos overload paths."""

    def test_readyz_is_ready_on_a_healthy_server(self):
        with serve_in_thread(window_s=0.001) as handle:
            status, payload = _get(handle, "/readyz")
            assert (status, payload) == (200, {"ready": True})

    def test_deadline_header_is_recorded_in_the_payload(self):
        with serve_in_thread(window_s=0.001) as handle:
            status, _, payload = _request_full(
                handle,
                "POST",
                "/v1/query",
                {"operating_point": dict(OP_CRYOSP_VOLTAGES)},
                headers={"X-CryoWire-Deadline-Ms": "5000"},
            )
            assert status == 200
            assert payload["deadline"]["budget_ms"] == 5000.0
            assert 0.0 < payload["deadline"]["remaining_ms"] <= 5000.0

    def test_tiny_deadline_is_structured_408(self):
        with serve_in_thread(window_s=0.001) as handle:
            status, _, payload = _request_full(
                handle,
                "POST",
                "/v1/query",
                {"operating_point": dict(OP_CRYOSP_VOLTAGES)},
                headers={"X-CryoWire-Deadline-Ms": "0.001"},
            )
            assert status == 408
            error = payload["error"]
            assert error["code"] == "deadline_exceeded"
            assert error["retryable"] is True
            assert error["budget_ms"] == 0.001

    def test_invalid_deadline_header_is_400(self):
        with serve_in_thread(window_s=0.001) as handle:
            for bad in ("soon", "-100", "0", "inf"):
                status, _, payload = _request_full(
                    handle,
                    "POST",
                    "/v1/query",
                    {"operating_point": dict(OP_CRYOSP_VOLTAGES)},
                    headers={"X-CryoWire-Deadline-Ms": bad},
                )
                assert status == 400, bad
                assert payload["error"]["code"] == "invalid_deadline"
                assert payload["error"]["retryable"] is False

    def test_full_gate_sheds_503_with_retry_after(self):
        with serve_in_thread(window_s=0.001, max_inflight=1) as handle:
            # Fill the gate from the outside (it is thread-safe), so the
            # next request is deterministically shed.
            assert handle.server.gate.try_acquire()
            try:
                status, headers, payload = _request_full(
                    handle,
                    "POST",
                    "/v1/query",
                    {"operating_point": dict(OP_CRYOSP_VOLTAGES)},
                )
                assert status == 503
                assert payload["error"]["code"] == "overloaded"
                assert payload["error"]["retryable"] is True
                assert headers["retry-after"] == "1"
            finally:
                handle.server.gate.release()
            status, _, payload = _request_full(
                handle,
                "POST",
                "/v1/query",
                {"operating_point": dict(OP_CRYOSP_VOLTAGES)},
            )
            assert status == 200
            stats = handle.stats()["overload"]
            assert stats["shed_overload"] == 1
            assert stats["admitted"] >= 1

    def test_health_probes_bypass_the_gate(self):
        with serve_in_thread(window_s=0.001, max_inflight=1) as handle:
            assert handle.server.gate.try_acquire()
            try:
                assert _get(handle, "/healthz")[0] == 200
                assert _get(handle, "/readyz")[0] == 200
                assert _get(handle, "/stats")[0] == 200
            finally:
                handle.server.gate.release()

    def test_stats_overload_shape(self):
        with serve_in_thread(window_s=0.001) as handle:
            status, payload = _get(handle, "/stats")
            assert status == 200
            overload = payload["overload"]
            assert {
                "max_inflight",
                "inflight",
                "admitted",
                "shed_overload",
                "shed_deadline",
                "shed_shutdown",
                "breaker",
                "drain",
                "draining",
            } <= set(overload)
            assert overload["breaker"]["state"] == "closed"
            assert overload["drain"] is None


class TestServerTeardown:
    def test_stop_reports_graceful_on_a_quiet_server(self):
        handle = serve_in_thread(window_s=0.001)
        assert handle.stop() == "graceful"
        assert handle.last_stop_outcome == "graceful"
        assert handle.server.last_drain["path"] == "graceful"

    def test_stop_is_idempotent(self):
        handle = serve_in_thread(window_s=0.001)
        assert handle.stop() == "graceful"
        # A second stop must not hang or error (the loop is gone).
        assert handle.stop(timeout=1.0) in ("graceful", "forced")

    def test_hung_drain_escalates_to_forced_loop_stop(self):
        """A stop() coroutine that never finishes must not leave the
        daemon thread holding the port: the handle escalates to a forced
        loop-stop and reports which path it took."""
        handle = serve_in_thread(window_s=0.001)

        async def hung_stop(drain_timeout_s=None):
            await asyncio.sleep(60)

        handle.server.stop = hung_stop
        t0 = time.monotonic()
        outcome = handle.stop(timeout=0.4)
        elapsed = time.monotonic() - t0
        assert outcome == "forced"
        assert handle.last_stop_outcome == "forced"
        assert elapsed < 5.0
        assert not handle._thread.is_alive()
