"""Serve-path chaos suite: seeded faults against a live server.

Extends the PR 4 chaos machinery to the layer that fronts user traffic.
Every test installs a deterministic :class:`~repro.util.faults.FaultPlan`
targeting the serve sites (``serve.connection``, ``serve.batch.drain``,
``serve.executor.model``, ``serve.executor.experiment``) and asserts the
overload-resilience contract end-to-end over real HTTP:

* every request gets **exactly one structured response** — an injected
  transient/fatal/hang never tears a reply or drops a waiter;
* a hung batch bounds the latency of deadline-carrying requests (they
  answer ``408`` while the batch is still sleeping) and their coalesced
  neighbours still get **bit-identical** answers;
* consecutive experiment-path failures open the circuit breaker
  (``503 breaker_open`` + ``Retry-After``, ``/readyz`` not-ready), a
  probe after the reset window closes it again;
* a drain under load completes inside the drain timeout with **zero
  abandoned in-flight futures**, even when a seeded hang wedges the
  batch mid-drain (the forced path fails leftovers with structured
  ``503 shutting_down``, never silence).

Run serially (``pytest -m chaos``): the suite boots real servers and
sleeps through real hangs.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.serve import serve_in_thread
from repro.tech import (
    FREEPDK45_CARD,
    OperatingPoint,
    TechContext,
    cryo_mosfet,
    use_context,
)
from repro.util import faults
from repro.util.faults import FaultPlan, FaultSpec

pytestmark = pytest.mark.chaos

QUERY_BODY = {
    "operating_point": {"temperature_k": 77.0, "vdd_v": 0.64, "vth_v": 0.25},
    "card": "freepdk45",
}


@pytest.fixture(autouse=True)
def _clean_faults():
    """No plan leaks in or out of any chaos test."""
    faults.clear()
    yield
    faults.clear()


def _expected_metrics():
    """The direct-library answer the HTTP payload must match bit-for-bit."""
    op = OperatingPoint.at(77.0, 0.64, 0.25)
    with use_context(TechContext()):
        mosfet = cryo_mosfet(FREEPDK45_CARD)
        delay = mosfet.gate_delay_factor(op)
        return {
            "gate_delay_factor": delay,
            "delay_speedup": 1.0 / delay,
            "leakage_factor": mosfet.leakage_factor(op),
            "effective_vth_v": mosfet.effective_vth(op),
            "is_cryogenic": True,
        }


def _request(port, method, path, payload=None, headers=None, timeout=30):
    """One request on a fresh connection; returns (status, headers, body).

    The body is always parsed as JSON — a torn response raises here,
    which is exactly what the suite must never see.
    """
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        data = response.read()
        response_headers = {k.lower(): v for k, v in response.getheaders()}
        return response.status, response_headers, json.loads(data)
    finally:
        conn.close()


def _install(*specs, seed=11):
    faults.install(FaultPlan(specs=tuple(specs), seed=seed))


# ----------------------------------------------------------------------
# connection-level faults
# ----------------------------------------------------------------------
class TestConnectionFaults:
    def test_transient_is_structured_503_and_next_request_is_exact(self):
        _install(FaultSpec("serve.connection", faults.TRANSIENT, max_fires=1))
        with serve_in_thread(window_s=0.001) as handle:
            status, _, body = _request(
                handle.port, "POST", "/v1/query", QUERY_BODY
            )
            assert status == 503
            assert body["error"]["code"] == "upstream_transient"
            assert body["error"]["retryable"] is True
            # The fault budget is spent; the retry must be untouched.
            status, _, body = _request(
                handle.port, "POST", "/v1/query", QUERY_BODY
            )
            assert status == 200
            assert body["metrics"] == _expected_metrics()

    def test_fatal_is_structured_500_not_a_torn_reply(self):
        _install(FaultSpec("serve.connection", faults.FATAL, max_fires=1))
        with serve_in_thread(window_s=0.001) as handle:
            status, _, body = _request(handle.port, "GET", "/v1/cards")
            assert status == 500
            assert body["error"]["code"] == "upstream_fatal"
            assert body["error"]["retryable"] is False
            status, _, body = _request(handle.port, "GET", "/v1/cards")
            assert status == 200


# ----------------------------------------------------------------------
# batch-path faults
# ----------------------------------------------------------------------
class TestBatchFaults:
    def test_hung_batch_bounds_deadline_and_neighbor_stays_exact(self):
        """A seeded hang wedges the batch on the executor thread. The
        deadline-carrying request must answer 408 while the batch is
        still sleeping (bounded latency), and its coalesced neighbour —
        unaffected by the deadline — must still get the bit-identical
        answer once the hang clears."""
        hang_s = 0.8
        _install(
            FaultSpec(
                "serve.batch.drain", faults.HANG, delay_s=hang_s, max_fires=1
            )
        )
        results = {}
        with serve_in_thread(window_s=0.05) as handle:

            def short_deadline():
                t0 = time.monotonic()
                results["short"] = _request(
                    handle.port,
                    "POST",
                    "/v1/query",
                    QUERY_BODY,
                    headers={"X-CryoWire-Deadline-Ms": "200"},
                ) + (time.monotonic() - t0,)

            def no_deadline():
                results["long"] = _request(
                    handle.port, "POST", "/v1/query", QUERY_BODY
                )

            threads = [
                threading.Thread(target=short_deadline),
                threading.Thread(target=no_deadline),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        status, _, body, elapsed = results["short"]
        assert status == 408
        assert body["error"]["code"] == "deadline_exceeded"
        assert body["error"]["retryable"] is True
        assert body["error"]["budget_ms"] == 200.0
        assert body["deadline"]["budget_ms"] == 200.0
        # Bounded: answered while the batch was still hanging.
        assert elapsed < hang_s - 0.05
        status, _, body = results["long"]
        assert status == 200
        assert body["metrics"] == _expected_metrics()

    def test_batch_transient_fans_out_structured_and_retries_exact(self):
        """A transient inside the batch evaluation fails every coalesced
        waiter with one structured 503 each (never silence, never a torn
        reply); retries after the budget is spent are bit-identical."""
        _install(
            FaultSpec("serve.batch.drain", faults.TRANSIENT, max_fires=1)
        )
        outcomes = []
        lock = threading.Lock()
        with serve_in_thread(window_s=0.05) as handle:

            def client():
                outcome = _request(
                    handle.port, "POST", "/v1/query", QUERY_BODY
                )
                with lock:
                    outcomes.append(outcome)

            threads = [threading.Thread(target=client) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            expected = _expected_metrics()
            n_failed = 0
            for status, _, body in outcomes:
                # Exactly one structured response per request: either the
                # injected transient (fanned out to the whole batch) or —
                # if the two clients happened not to coalesce — the exact
                # answer from the post-fault batch.
                if status == 503:
                    n_failed += 1
                    assert body["error"]["code"] == "upstream_transient"
                    assert body["error"]["retryable"] is True
                else:
                    assert status == 200
                    assert body["metrics"] == expected
            assert n_failed >= 1
            # The budget is spent: both retries answer exactly.
            for _ in range(2):
                status, _, body = _request(
                    handle.port, "POST", "/v1/query", QUERY_BODY
                )
                assert status == 200
                assert body["metrics"] == expected

    def test_model_executor_transient_on_grid_is_structured(self):
        _install(
            FaultSpec("serve.executor.model", faults.TRANSIENT, max_fires=1)
        )
        grid = {"temperature_k": [77.0, 300.0], "vdd_v": 0.64, "vth_v": 0.25}
        with serve_in_thread(window_s=0.001) as handle:
            status, _, body = _request(handle.port, "POST", "/v1/grid", grid)
            assert status == 503
            assert body["error"]["code"] == "upstream_transient"
            status, _, body = _request(handle.port, "POST", "/v1/grid", grid)
            assert status == 200
            assert body["points"]["temperature_k"] == [77.0, 300.0]


# ----------------------------------------------------------------------
# the experiment-path circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_failures_half_opens_and_recovers(self):
        _install(
            FaultSpec(
                "serve.executor.experiment", faults.TRANSIENT, max_fires=2
            )
        )
        ipc = {"system": "chp_77k_mesh", "workload": "blackscholes"}
        with serve_in_thread(
            window_s=0.001, breaker_threshold=2, breaker_reset_s=0.25
        ) as handle:
            # Two consecutive upstream failures trip the breaker.
            for _ in range(2):
                status, _, body = _request(handle.port, "POST", "/v1/ipc", ipc)
                assert status == 503
                assert body["error"]["code"] == "upstream_transient"
            # Open: fail fast, advertise the retry window, go not-ready.
            status, headers, body = _request(handle.port, "POST", "/v1/ipc", ipc)
            assert status == 503
            assert body["error"]["code"] == "breaker_open"
            assert body["error"]["retryable"] is True
            assert int(headers["retry-after"]) >= 1
            status, _, body = _request(handle.port, "GET", "/readyz")
            assert (status, body) == (
                503,
                {"ready": False, "reason": "breaker_open"},
            )
            stats = handle.stats()
            assert stats["overload"]["breaker"]["state"] == "open"
            assert stats["overload"]["breaker"]["opens"] == 1
            # After the reset window the half-open probe goes through
            # (the fault budget is spent), closing the breaker.
            time.sleep(0.3)
            status, _, body = _request(handle.port, "POST", "/v1/ipc", ipc)
            assert status == 200
            assert body["system"] == "chp_77k_mesh"
            status, _, body = _request(handle.port, "GET", "/readyz")
            assert (status, body) == (200, {"ready": True})
            assert handle.stats()["overload"]["breaker"]["state"] == "closed"


# ----------------------------------------------------------------------
# drain under load
# ----------------------------------------------------------------------
class TestDrainUnderLoad:
    def test_drain_completes_with_zero_abandoned_futures(self):
        """Stop the server while clients are mid-flight: every request
        that got as far as the server answers structured (200 / 503
        shutting_down / 408), the drain finishes inside its timeout, and
        no in-flight future is abandoned."""
        handle = serve_in_thread(window_s=0.002, drain_timeout_s=5.0)
        stop_draining = threading.Event()
        seen = {"statuses": [], "torn": 0, "bad_errors": 0}
        lock = threading.Lock()

        def client():
            while not stop_draining.is_set():
                try:
                    status, _, body = _request(
                        handle.port, "POST", "/v1/query", QUERY_BODY
                    )
                except (ValueError, json.JSONDecodeError):
                    with lock:
                        seen["torn"] += 1
                    return
                except (http.client.HTTPException, OSError):
                    # Transport-level refusal (listener closed): the
                    # request never reached dispatch; not a torn reply.
                    return
                with lock:
                    seen["statuses"].append(status)
                    if status not in (200, 503, 408):
                        seen["bad_errors"] += 1
                    if status == 503 and body["error"]["code"] not in (
                        "shutting_down",
                        "overloaded",
                    ):
                        seen["bad_errors"] += 1

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)  # get real load in flight
        t0 = time.monotonic()
        outcome = handle.stop()
        drain_wall = time.monotonic() - t0
        stop_draining.set()
        for thread in threads:
            thread.join(timeout=5)
        assert outcome == "graceful"
        assert seen["torn"] == 0
        assert seen["bad_errors"] == 0
        assert seen["statuses"].count(200) > 0
        drain = handle.server.last_drain
        assert drain["path"] == "graceful"
        assert drain["abandoned_inflight"] == 0
        assert drain["batcher"]["failed"] == 0
        assert drain_wall < 5.0 + 2.0

    def test_hung_batch_forces_drain_and_still_answers_structured(self):
        """A seeded hang wedges the batch exactly when the drain starts:
        the graceful window expires, the forced path fails the wedged
        futures with structured 503 shutting_down — the client is
        answered, not abandoned — and stop() returns promptly."""
        hang_s = 2.0
        _install(
            FaultSpec(
                "serve.batch.drain", faults.HANG, delay_s=hang_s, max_fires=1
            )
        )
        handle = serve_in_thread(
            window_s=0.001,
            drain_timeout_s=0.4,
            default_deadline_ms=30_000.0,
        )
        result = {}

        def client():
            result["response"] = _request(
                handle.port, "POST", "/v1/query", QUERY_BODY, timeout=30
            )

        thread = threading.Thread(target=client)
        thread.start()
        time.sleep(0.3)  # the request is now wedged inside the hang
        t0 = time.monotonic()
        outcome = handle.stop(timeout=10.0)
        stop_wall = time.monotonic() - t0
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert outcome == "graceful"  # handle-level: stop() itself returned
        assert stop_wall < hang_s + 3.0
        status, _, body = result["response"]
        assert status == 503
        assert body["error"]["code"] == "shutting_down"
        assert body["error"]["retryable"] is True
        drain = handle.server.last_drain
        assert drain["path"] == "forced"
        assert drain["abandoned_inflight"] == 0
        assert drain["batcher"]["outcome"] == "forced"
        assert drain["batcher"]["failed"] == 1
