"""Sharded sweep orchestration (:mod:`repro.experiments.shard`).

The fast half exercises the deterministic machinery — partition,
derived jitter seeds, manifest round-trips, merge equivalence against
an unsharded run, resume tolerance of unreadable manifests. The
``chaos``-marked half injects seeded faults at the shard sites
(``shard.group.kill.<k>``, ``shard.heartbeat.<k>``,
``shard.manifest.write.<k>``) and proves each recovery path: dead-shard
requeue, requeue-budget quarantine, heartbeat declaration with
late-result discard, checkpoint loss tolerance, and cross-shard resume
from surviving manifests only.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.engine import (
    COMPLETED_STATUSES,
    ERROR,
    QUARANTINED,
    SKIPPED,
    ExecutionEngine,
    ExperimentExecutionError,
)
from repro.experiments.registry import _SPECS, experiment
from repro.experiments.shard import (
    DEAD,
    DONE,
    ShardCoordinator,
    ShardManifest,
    assign_shards,
    derive_shard_seed,
    read_shard_manifests,
    shard_of,
)
from repro.util import faults
from repro.util.faults import FaultPlan, FaultSpec


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def _register(experiment_id, value=1.0, sleep_s=0.0):
    """Register a tiny synthetic experiment; returns its cleanup."""

    @experiment(experiment_id)
    def _driver():
        if sleep_s:
            time.sleep(sleep_s)
        result = ExperimentResult(experiment_id, f"synthetic {experiment_id}", ("x",))
        result.add_row(value)
        return result

    return lambda: _SPECS.pop(experiment_id, None)


def _ids_on_shard(prefix, shard_index, n_shards, count):
    """``count`` experiment-id names that hash onto ``shard_index``."""
    found, i = [], 0
    while len(found) < count:
        candidate = f"{prefix}{i}"
        if shard_of(candidate, None, n_shards) == shard_index:
            found.append(candidate)
        i += 1
    return found


@pytest.fixture
def synth():
    """Register synthetic experiments on demand; auto-clean afterwards."""
    cleanups = []

    def factory(experiment_id, **kwargs):
        cleanups.append(_register(experiment_id, **kwargs))
        return experiment_id

    yield factory
    for cleanup in cleanups:
        cleanup()


def _coord(tmp_path, n_shards=2, **kwargs):
    kwargs.setdefault("backoff_base_s", 0.01)
    kwargs.setdefault("backoff_cap_s", 0.05)
    kwargs.setdefault("poll_interval_s", 0.01)
    return ShardCoordinator(n_shards, cache_dir=tmp_path / "cache", **kwargs)


def _by_id(outcome):
    return {r.experiment_id: r for r in outcome.manifest.records}


class TestPartition:
    def test_shard_of_is_deterministic_and_in_range(self):
        for n in (1, 2, 3, 7):
            for eid in ("fig20", "table1", "fig23"):
                first = shard_of(eid, {"a": 1}, n)
                assert first == shard_of(eid, {"a": 1}, n)
                assert 0 <= first < n

    def test_shard_of_depends_on_kwargs(self):
        hits = [
            shard_of("fig20", {"i": i}, 5) for i in range(64)
        ]
        assert len(set(hits)) > 1  # kwargs move items between shards

    def test_shard_of_rejects_bad_n(self):
        with pytest.raises(ValueError):
            shard_of("fig20", None, 0)

    def test_assign_shards_partitions_everything_exactly_once(self):
        ids = [f"e{i}" for i in range(40)]
        assigned = assign_shards(ids, None, 4)
        merged = [eid for shard in assigned.values() for eid in shard]
        assert sorted(merged) == sorted(ids)
        assert set(assigned) == {0, 1, 2, 3}

    def test_derived_seeds_are_distinct_and_stable(self):
        seeds = [derive_shard_seed(1234, k) for k in range(16)]
        assert len(set(seeds)) == 16
        assert seeds == [derive_shard_seed(1234, k) for k in range(16)]
        assert derive_shard_seed(None, 0) != derive_shard_seed(None, 1)
        assert derive_shard_seed(None, 3) != derive_shard_seed(1234, 3)


class TestShardManifest:
    def test_round_trips_through_disk(self, tmp_path):
        manifest = ShardManifest(
            shard_index=1,
            n_shards=3,
            run_key="abc123",
            state=DONE,
            assigned=["a", "b"],
            beats=7,
            stolen_in=["c"],
        )
        path = tmp_path / "shards" / "shard-1.json"
        manifest.save(path)
        loaded = ShardManifest.load(path)
        assert loaded.shard_index == 1
        assert loaded.state == DONE
        assert loaded.assigned == ["a", "b"]
        assert loaded.beats == 7
        assert loaded.stolen_in == ["c"]

    def test_reader_tolerates_corrupt_manifests(self, tmp_path):
        shards = tmp_path / "shards"
        shards.mkdir()
        ShardManifest(shard_index=0, n_shards=2, run_key="k").save(
            shards / "shard-0.json"
        )
        (shards / "shard-1.json").write_text("{truncated garba")
        manifests, unreadable = read_shard_manifests(shards)
        assert [m.shard_index for m in manifests] == [0]
        assert unreadable == 1

    def test_reader_handles_missing_directory(self, tmp_path):
        manifests, unreadable = read_shard_manifests(tmp_path / "nope")
        assert manifests == [] and unreadable == 0


class TestValidation:
    def test_rejects_bad_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            ShardCoordinator(0, cache_dir=tmp_path)
        with pytest.raises(ValueError):
            ShardCoordinator(2, jobs_per_shard=0, cache_dir=tmp_path)
        with pytest.raises(ValueError):
            ShardCoordinator(2, max_requeues=-1, cache_dir=tmp_path)
        with pytest.raises(ValueError):
            ShardCoordinator(2, straggler_factor=0.5, cache_dir=tmp_path)

    def test_unknown_experiment_fails_fast(self, tmp_path):
        coord = _coord(tmp_path)
        with pytest.raises(KeyError):
            coord.run(["definitely_not_registered"])


class TestEquivalence:
    def test_sharded_matches_unsharded_run(self, tmp_path, synth):
        ids = [synth(f"_sh_eq{i}", value=float(i)) for i in range(6)]

        sharded = _coord(tmp_path / "a", n_shards=3).run(ids)
        reference = ExecutionEngine(cache_dir=tmp_path / "b" / "cache").run(ids)

        assert set(sharded.results) == set(reference.results) == set(ids)
        for eid in ids:
            assert (
                sharded.results[eid].to_dict() == reference.results[eid].to_dict()
            )
        sharded_totals = sharded.manifest.to_dict()["totals"]
        reference_totals = reference.manifest.to_dict()["totals"]
        sharded_totals.pop("compute_s")
        reference_totals.pop("compute_s")
        assert sharded_totals == reference_totals

    def test_records_are_shard_tagged_and_schedule_ordered(self, tmp_path, synth):
        ids = [synth(f"_sh_tag{i}") for i in range(5)]
        outcome = _coord(tmp_path, n_shards=2).run(ids)
        assert outcome.manifest.shards == 2
        assert [r.experiment_id for r in outcome.manifest.records] == (
            ExecutionEngine.schedule(ids)
        )
        for record in outcome.manifest.records:
            assert record.shard == shard_of(record.experiment_id, {}, 2)

    def test_merged_manifest_renders_shard_column(self, tmp_path, synth):
        ids = [synth(f"_sh_sum{i}") for i in range(3)]
        outcome = _coord(tmp_path, n_shards=2).run(ids)
        summary = outcome.manifest.summary()
        assert "shard" in summary
        assert "shards=2" in summary

    def test_single_shard_degenerates_gracefully(self, tmp_path, synth):
        ids = [synth(f"_sh_one{i}") for i in range(3)]
        outcome = _coord(tmp_path, n_shards=1).run(ids)
        assert {r.status for r in outcome.manifest.records} <= set(
            COMPLETED_STATUSES
        )

    def test_failures_raise_without_keep_going(self, tmp_path, synth):
        good = synth("_sh_fail_good")

        @experiment("_sh_fail_bad")
        def _bad():
            raise RuntimeError("boom")

        try:
            with pytest.raises(ExperimentExecutionError) as excinfo:
                _coord(tmp_path, n_shards=2).run([good, "_sh_fail_bad"])
            outcome = excinfo.value.outcome
            assert outcome is not None
            assert good in outcome.results
        finally:
            _SPECS.pop("_sh_fail_bad", None)


class TestResume:
    def test_resume_skips_completed_from_shard_manifests(self, tmp_path, synth):
        ids = [synth(f"_sh_res{i}") for i in range(4)]
        coord = _coord(tmp_path, n_shards=2)
        coord.run(ids)
        second = _coord(tmp_path, n_shards=2).run(ids, resume=True)
        assert all(r.status == SKIPPED for r in second.manifest.records)
        assert set(second.results) == set(ids)  # results served from cache

    def test_resume_reruns_items_of_unreadable_manifests(self, tmp_path, synth):
        ids = [synth(f"_sh_res2_{i}") for i in range(6)]
        coord = _coord(tmp_path, n_shards=2)
        coord.run(ids)
        # Mangle shard 0's manifest: its completions become unknowable.
        shard0 = coord.shards_dir / "shard-0.json"
        shard0.write_text("not json at all")
        lost = {eid for eid in ids if shard_of(eid, None, 2) == 0}
        second = _coord(
            tmp_path, n_shards=2, use_cache=False
        ).run(ids, resume=True)
        by_id = _by_id(second)
        for eid in ids:
            if eid in lost:
                assert by_id[eid].status != SKIPPED
            else:
                assert by_id[eid].status == SKIPPED

    def test_resume_falls_back_to_engine_manifest(self, tmp_path, synth):
        ids = [synth(f"_sh_res3_{i}") for i in range(3)]
        ExecutionEngine(cache_dir=tmp_path / "cache").run(ids)
        outcome = _coord(tmp_path, n_shards=2).run(ids, resume=True)
        assert all(r.status == SKIPPED for r in outcome.manifest.records)


class TestStealing:
    def test_idle_shard_steals_from_straggler(self, tmp_path, synth):
        # Shard 0 gets a pile of slow items, shard 1 a single fast one:
        # with stealing on, shard 1 must take work off shard 0's tail.
        slow_ids = [
            synth(eid, sleep_s=0.08)
            for eid in _ids_on_shard("_sh_steal_a", 0, 2, 6)
        ]
        fast_ids = [synth(_ids_on_shard("_sh_steal_b", 1, 2, 1)[0])]
        coord = _coord(
            tmp_path,
            n_shards=2,
            steal=True,
            straggler_factor=1.0,
            chunk_size=1,
        )
        outcome = coord.run(slow_ids + fast_ids)
        assert coord.total_stolen >= 1
        by_id = _by_id(outcome)
        stolen = [
            eid for eid in slow_ids if by_id[eid].shard == 1
        ]
        assert stolen  # at least one slow item ran on the thief
        assert set(outcome.results) == set(slow_ids + fast_ids)

    def test_stealing_is_bounded(self, tmp_path, synth):
        slow_ids = [
            synth(eid, sleep_s=0.05)
            for eid in _ids_on_shard("_sh_cap_a", 0, 2, 8)
        ]
        fast_ids = [synth(_ids_on_shard("_sh_cap_b", 1, 2, 1)[0])]
        coord = _coord(
            tmp_path,
            n_shards=2,
            steal=True,
            straggler_factor=1.0,
            chunk_size=1,
            max_steals_per_shard=1,
        )
        coord.run(slow_ids + fast_ids)
        assert coord.total_stolen <= 1


@pytest.mark.chaos
class TestShardChaos:
    def test_dead_shard_requeues_onto_survivors(self, tmp_path, synth):
        ids = [synth(f"_sh_kill{i}", value=float(i)) for i in range(6)]
        victim = shard_of(ids[0], None, 3)
        faults.install(
            FaultPlan(
                specs=(
                    FaultSpec(
                        f"shard.group.kill.{victim}",
                        faults.FATAL,
                        max_fires=1,
                    ),
                ),
                seed=7,
            )
        )
        coord = _coord(tmp_path / "a", n_shards=3)
        outcome = coord.run(ids)
        faults.clear()

        assert coord.total_requeued >= 1
        by_id = _by_id(outcome)
        assert set(by_id) == set(ids)
        assert all(r.status in COMPLETED_STATUSES for r in by_id.values())
        # Byte-identical results vs. a fault-free unsharded run.
        reference = ExecutionEngine(cache_dir=tmp_path / "b" / "cache").run(ids)
        for eid in ids:
            assert (
                outcome.results[eid].to_dict()
                == reference.results[eid].to_dict()
            )
        manifests, unreadable = read_shard_manifests(coord.shards_dir)
        assert unreadable == 0
        states = {m.shard_index: m.state for m in manifests}
        assert states[victim] == DEAD

    def test_requeue_disabled_records_errors(self, tmp_path, synth):
        ids = [synth(f"_sh_noreq{i}") for i in range(6)]
        victim = shard_of(ids[0], None, 3)
        lost = {eid for eid in ids if shard_of(eid, None, 3) == victim}
        faults.install(
            FaultPlan(
                specs=(
                    FaultSpec(
                        f"shard.group.kill.{victim}", faults.FATAL, max_fires=1
                    ),
                ),
                seed=3,
            )
        )
        outcome = _coord(tmp_path, n_shards=3, requeue=False).run(
            ids, keep_going=True
        )
        by_id = _by_id(outcome)
        for eid in lost:
            assert by_id[eid].status == ERROR
            assert "died" in by_id[eid].error

    def test_requeue_budget_quarantines_group_killers(self, tmp_path, synth):
        ids = [synth(f"_sh_quar{i}") for i in range(4)]
        victim = shard_of(ids[0], None, 2)
        lost = {eid for eid in ids if shard_of(eid, None, 2) == victim}
        faults.install(
            FaultPlan(
                specs=(
                    FaultSpec(
                        f"shard.group.kill.{victim}", faults.FATAL, max_fires=1
                    ),
                ),
                seed=5,
            )
        )
        outcome = _coord(tmp_path, n_shards=2, max_requeues=0).run(
            ids, keep_going=True
        )
        by_id = _by_id(outcome)
        for eid in lost:
            assert by_id[eid].status == QUARANTINED
            assert "dead shard" in by_id[eid].error

    def test_heartbeat_timeout_declares_and_requeues(self, tmp_path, synth):
        ids = [synth(f"_sh_hang{i}") for i in range(6)]
        victim = shard_of(ids[0], None, 3)
        faults.install(
            FaultPlan(
                specs=(
                    FaultSpec(
                        f"shard.heartbeat.{victim}",
                        faults.HANG,
                        max_fires=1,
                        delay_s=1.2,
                    ),
                ),
                seed=11,
            )
        )
        coord = _coord(tmp_path, n_shards=3, heartbeat_timeout_s=0.2)
        outcome = coord.run(ids)
        by_id = _by_id(outcome)
        # Exactly one record per item, everything completed, nothing lost
        # and nothing double-counted despite the late wake-up.
        assert sorted(by_id) == sorted(ids)
        assert all(r.status in COMPLETED_STATUSES for r in by_id.values())

    def test_lost_checkpoints_never_kill_the_run(self, tmp_path, synth):
        ids = [synth(f"_sh_ckpt{i}") for i in range(4)]
        faults.install(
            FaultPlan(
                specs=(
                    FaultSpec("shard.manifest.write.*", faults.FATAL),
                ),
                seed=2,
            )
        )
        coord = _coord(tmp_path, n_shards=2)
        outcome = coord.run(ids)
        assert all(
            r.status in COMPLETED_STATUSES for r in outcome.manifest.records
        )
        # No checkpoint survived, and that's fine.
        manifests, _ = read_shard_manifests(coord.shards_dir)
        assert manifests == []

    def test_corrupt_checkpoints_are_unreadable_not_fatal(self, tmp_path, synth):
        ids = [synth(f"_sh_mang{i}") for i in range(4)]
        faults.install(
            FaultPlan(
                specs=(
                    FaultSpec(
                        "shard.manifest.write.*", faults.CORRUPT, probability=1.0
                    ),
                ),
                seed=9,
            )
        )
        coord = _coord(tmp_path, n_shards=2)
        outcome = coord.run(ids)
        faults.clear()
        assert all(
            r.status in COMPLETED_STATUSES for r in outcome.manifest.records
        )
        _, unreadable = read_shard_manifests(coord.shards_dir)
        assert unreadable >= 1
        # Resume survives the wreckage: unreadable manifests mean re-run,
        # not a crash (the cache still serves the results as hits).
        second = _coord(tmp_path, n_shards=2).run(ids, resume=True)
        assert set(second.results) == set(ids)

    def test_resume_from_surviving_manifests_reruns_only_lost(
        self, tmp_path, synth
    ):
        ids = [synth(f"_sh_wreck{i}") for i in range(6)]
        victim = shard_of(ids[0], None, 3)
        lost = {eid for eid in ids if shard_of(eid, None, 3) == victim}
        faults.install(
            FaultPlan(
                specs=(
                    FaultSpec(
                        f"shard.group.kill.{victim}", faults.FATAL, max_fires=1
                    ),
                ),
                seed=13,
            )
        )
        coord = _coord(tmp_path, n_shards=3, requeue=False)
        coord.run(ids, keep_going=True)
        faults.clear()
        # The dead shard's manifest is gone with its machine.
        (coord.shards_dir / f"shard-{victim}.json").unlink()

        second = _coord(tmp_path, n_shards=3, use_cache=False)
        outcome = second.run(ids, resume=True)
        by_id = _by_id(outcome)
        for eid in ids:
            if eid in lost:
                assert by_id[eid].status != SKIPPED  # re-ran
            else:
                assert by_id[eid].status == SKIPPED  # survivors' work kept
