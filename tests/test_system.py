"""System-level simulator: Table 4 configs and the multicore CPI model."""

import pytest

from repro.system.config import (
    BASELINE_300K_MESH,
    CHP_77K_CRYOBUS,
    CHP_77K_IDEAL,
    CHP_77K_MESH,
    CRYOSP_77K_CRYOBUS,
    CRYOSP_77K_CRYOBUS_2WAY,
    CRYOSP_77K_MESH,
    EVALUATION_SYSTEMS,
    NocSpec,
    SYSTEMS_BY_NAME,
)
from repro.system.multicore import MulticoreSystem
from repro.workloads.prefetch import StridePrefetcher
from repro.workloads.profiles import by_name, PARSEC_2_1


class TestTable4Configs:
    def test_five_evaluation_systems(self):
        assert len(EVALUATION_SYSTEMS) == 5

    def test_core_frequencies(self):
        assert BASELINE_300K_MESH.core.frequency_ghz == 4.0
        assert CHP_77K_MESH.core.frequency_ghz == 6.1
        assert CRYOSP_77K_CRYOBUS.core.frequency_ghz == 7.84

    def test_cryosp_is_deep_and_narrow(self):
        config = CRYOSP_77K_CRYOBUS.core.config
        assert config.pipeline_depth == 17
        assert config.issue_width == 4

    def test_protocols_match_fabrics(self):
        assert BASELINE_300K_MESH.noc.protocol == "directory"
        assert CRYOSP_77K_CRYOBUS.noc.protocol == "snoop"

    def test_noc_voltages(self):
        assert CHP_77K_MESH.noc.operating_point.vdd_v == pytest.approx(0.55)
        assert BASELINE_300K_MESH.noc.operating_point.vdd_v == pytest.approx(1.0)

    def test_memory_pairing(self):
        assert BASELINE_300K_MESH.dram.random_access_ns == pytest.approx(60.32)
        assert CHP_77K_MESH.dram.random_access_ns == pytest.approx(15.84)

    def test_with_noc_swaps_fabric(self):
        swapped = BASELINE_300K_MESH.with_noc(CRYOSP_77K_CRYOBUS.noc)
        assert swapped.noc.kind == "cryobus"
        assert swapped.core is BASELINE_300K_MESH.core

    def test_registry_contains_variants(self):
        assert "CryoSP (77K, CryoBus, 2-way)" in SYSTEMS_BY_NAME

    def test_nocspec_validation(self):
        with pytest.raises(ValueError):
            NocSpec("bad", "torus", BASELINE_300K_MESH.noc.operating_point, "directory")
        with pytest.raises(ValueError):
            NocSpec("bad", "mesh", BASELINE_300K_MESH.noc.operating_point, "mosi")


class TestMulticoreEvaluation:
    @pytest.fixture(scope="class")
    def chp_mesh(self):
        return MulticoreSystem(CHP_77K_MESH)

    def test_cpi_stack_components_non_negative(self, chp_mesh):
        stack = chp_mesh.evaluate(by_name("canneal")).cpi_stack
        for value in vars(stack).values():
            assert value >= 0.0

    def test_fractions_sum_to_one(self, chp_mesh):
        fractions = chp_mesh.evaluate(by_name("ferret")).cpi_stack.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_closed_loop_converges(self, chp_mesh):
        short = chp_mesh.evaluate(by_name("canneal"), iterations=25)
        long = chp_mesh.evaluate(by_name("canneal"), iterations=80)
        assert short.ipc == pytest.approx(long.ipc, rel=0.01)

    def test_performance_inverse_of_time(self, chp_mesh):
        result = chp_mesh.evaluate(by_name("vips"))
        assert result.performance * result.time_per_kilo_instruction_ns == (
            pytest.approx(1000.0)
        )

    def test_memory_bound_workloads_inject_more(self, chp_mesh):
        heavy = chp_mesh.evaluate(by_name("canneal")).injection_rate_per_core
        light = chp_mesh.evaluate(by_name("blackscholes")).injection_rate_per_core
        assert heavy > light

    def test_rejects_bad_exposure(self):
        with pytest.raises(ValueError):
            MulticoreSystem(CHP_77K_MESH, exposure=0.0)


class TestSystemOrdering:
    """The paper's Fig. 23 ordering must hold for every workload."""

    @pytest.fixture(scope="class")
    def results(self):
        systems = (
            BASELINE_300K_MESH,
            CHP_77K_MESH,
            CRYOSP_77K_MESH,
            CHP_77K_CRYOBUS,
            CRYOSP_77K_CRYOBUS,
        )
        return {
            s.name: MulticoreSystem(s).evaluate_suite(PARSEC_2_1) for s in systems
        }

    def test_cryogenics_beats_300k_everywhere(self, results):
        for profile in PARSEC_2_1:
            assert (
                results["CHP-core (77K, Mesh)"][profile.name].performance
                > results["Baseline (300K, Mesh)"][profile.name].performance
            )

    def test_cryosp_beats_chp_everywhere(self, results):
        for profile in PARSEC_2_1:
            assert (
                results["CryoSP (77K, Mesh)"][profile.name].performance
                > results["CHP-core (77K, Mesh)"][profile.name].performance
            )

    def test_cryobus_beats_mesh_everywhere(self, results):
        for profile in PARSEC_2_1:
            assert (
                results["CHP-core (77K, CryoBus)"][profile.name].performance
                > results["CHP-core (77K, Mesh)"][profile.name].performance
            )

    def test_full_system_is_best_everywhere(self, results):
        for profile in PARSEC_2_1:
            best = results["CryoSP (77K, CryoBus)"][profile.name].performance
            for name, suite in results.items():
                if name != "CryoSP (77K, CryoBus)":
                    assert best >= suite[profile.name].performance

    def test_synergy_on_sync_heavy_workloads(self, results):
        """CryoSP+CryoBus exceeds the product-of-parts on streamcluster."""
        ref = results["CHP-core (77K, Mesh)"]["streamcluster"].performance
        combined = results["CryoSP (77K, CryoBus)"]["streamcluster"].performance / ref
        sp_only = results["CryoSP (77K, Mesh)"]["streamcluster"].performance / ref
        bus_only = results["CHP-core (77K, CryoBus)"]["streamcluster"].performance / ref
        assert combined > sp_only * bus_only


class TestIdealAndInterleaved:
    def test_ideal_noc_is_upper_bound(self):
        ideal = MulticoreSystem(CHP_77K_IDEAL)
        real = MulticoreSystem(CHP_77K_CRYOBUS)
        for profile in PARSEC_2_1[:4]:
            assert (
                ideal.evaluate(profile).performance
                >= real.evaluate(profile).performance
            )

    def test_interleaving_helps_under_prefetch_stress(self):
        prefetcher = StridePrefetcher()
        single = MulticoreSystem(CRYOSP_77K_CRYOBUS)
        double = MulticoreSystem(CRYOSP_77K_CRYOBUS_2WAY)
        profile = by_name("libquantum")
        assert (
            double.evaluate(profile, prefetcher).performance
            >= single.evaluate(profile, prefetcher).performance
        )


class TestConvergenceAndReferenceClock:
    def test_exact_convergence_matches_fixed_iterations(self):
        """tolerance=0.0 exits only on an exact IPC repeat, after which
        every further iteration would reproduce the same state -- so a
        converged run is bit-identical to any longer fixed budget."""
        system = MulticoreSystem(CRYOSP_77K_CRYOBUS)
        for profile in PARSEC_2_1[:4]:
            converged = system.evaluate(profile, iterations=200)
            exhaustive = system.evaluate(profile, iterations=4000)
            assert converged.iterations_used < 200  # early exit fired
            assert converged.iterations_used == exhaustive.iterations_used
            assert converged.cpi_stack == exhaustive.cpi_stack
            assert converged.ipc == exhaustive.ipc

    def test_tolerance_converges_early_and_close(self):
        system = MulticoreSystem(CHP_77K_MESH)
        profile = by_name("canneal")
        exact = system.evaluate(profile)
        loose = system.evaluate(profile, tolerance=1e-6)
        assert loose.iterations_used <= exact.iterations_used
        assert loose.ipc == pytest.approx(exact.ipc, rel=1e-4)

    def test_iterations_used_reported(self):
        result = MulticoreSystem(BASELINE_300K_MESH).evaluate(PARSEC_2_1[0])
        assert 1 <= result.iterations_used <= 40

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            MulticoreSystem(BASELINE_300K_MESH).evaluate(
                PARSEC_2_1[0], tolerance=-0.1
            )

    def test_ideal_noc_clock_derives_from_spec(self):
        from dataclasses import replace

        fast_spec = replace(CHP_77K_IDEAL.noc, reference_clock_ghz=8.0)
        fast = MulticoreSystem(CHP_77K_IDEAL.with_noc(fast_spec))
        default = MulticoreSystem(CHP_77K_IDEAL)
        assert default.noc.clock_ghz == 4.0
        assert fast.noc.clock_ghz == 8.0
        # A faster reference clock shortens multi-flit serialisation, so
        # the ideal fabric can only get better.
        profile = by_name("canneal")
        assert (
            fast.evaluate(profile).performance
            >= default.evaluate(profile).performance
        )

    def test_reference_clock_must_be_positive(self):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(CHP_77K_IDEAL.noc, reference_clock_ghz=0.0)
