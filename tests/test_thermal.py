"""The multi-stage cryostat layer: stages, links, ledger, degeneracy."""

import math

import pytest

from repro.power.cooling import COOLING_OVERHEAD_77K, carnot_cooling_overhead
from repro.power.tco import (
    TemperatureOptimizer,
    cryostat_tco_w,
    COOLER_CAPEX_FACTOR,
    LN2_INVENTORY_FACTOR,
)
from repro.thermal import (
    ComponentPlacement,
    Cryostat,
    InterStageLink,
    STAGE_4K,
    STAGE_77K,
    STAGE_300K,
    ThermalStage,
    electrical_link,
    optical_link,
    standard_stack,
)


class TestThermalStage:
    def test_77k_stage_pins_measured_overhead(self):
        assert STAGE_77K.cooling_overhead == COOLING_OVERHEAD_77K

    def test_4k_stage_uses_one_percent_of_carnot(self):
        expected = carnot_cooling_overhead(4.0, carnot_fraction=0.01)
        assert STAGE_4K.cooling_overhead == expected
        assert STAGE_4K.cooling_overhead == pytest.approx(7400.0, rel=0.01)

    def test_ambient_stage_has_zero_overhead(self):
        assert STAGE_300K.cooling_overhead == 0.0
        assert STAGE_300K.is_ambient

    def test_override_wins(self):
        stage = ThermalStage("pinned", 40.0, overhead_override=123.0)
        assert stage.cooling_overhead == 123.0

    def test_rejects_nonphysical_temperature(self):
        for bad in (0.0, -4.0, float("nan")):
            with pytest.raises(ValueError):
                ThermalStage("bad", bad)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            ThermalStage("", 77.0)


class TestInterStageLink:
    def test_cold_heatload_is_conducted_plus_dissipated(self):
        link = InterStageLink(
            "x", "electrical", "300K", "77K",
            conducted_w=0.5, dissipated_w=0.25,
        )
        assert link.cold_heatload_w == 0.75

    def test_electrical_link_scales_with_lanes(self):
        one = electrical_link("300K", "77K", lanes=1)
        many = electrical_link("300K", "77K", lanes=10)
        assert many.conducted_w == pytest.approx(10 * one.conducted_w)
        assert many.dissipated_w == pytest.approx(10 * one.dissipated_w)
        assert many.hot_side_w == pytest.approx(10 * one.hot_side_w)

    def test_optical_conducts_less_but_drives_hotter(self):
        """The CO-QLink trade: cold heatload shrinks, hot-side power grows."""
        e = electrical_link("300K", "77K", lanes=8)
        o = optical_link("300K", "77K", lanes=8)
        assert o.cold_heatload_w < e.cold_heatload_w
        assert o.hot_side_w > e.hot_side_w

    def test_rejects_bad_kind_and_negative_watts(self):
        with pytest.raises(ValueError):
            InterStageLink(
                "x", "pneumatic", "300K", "77K",
                conducted_w=0.0, dissipated_w=0.0,
            )
        with pytest.raises(ValueError):
            InterStageLink(
                "x", "electrical", "300K", "77K",
                conducted_w=-1.0, dissipated_w=0.0,
            )

    def test_rejects_nonpositive_lanes(self):
        with pytest.raises(ValueError):
            electrical_link("300K", "77K", lanes=0)


class TestCryostatConstruction:
    def test_standard_stack_shapes(self):
        assert [s.name for s in standard_stack()] == ["300K", "77K", "4K"]
        assert [s.name for s in standard_stack(include_4k=False)] == [
            "300K",
            "77K",
        ]

    def test_rejects_unordered_stages(self):
        with pytest.raises(ValueError, match="warm to cold"):
            Cryostat([STAGE_77K, STAGE_300K])

    def test_rejects_duplicate_stage_names(self):
        with pytest.raises(ValueError, match="unique"):
            Cryostat([STAGE_300K, ThermalStage("300K", 77.0)])

    def test_rejects_link_to_unknown_stage(self):
        with pytest.raises(ValueError, match="unknown stage"):
            Cryostat(
                standard_stack(),
                links=[electrical_link("300K", "40K")],
            )

    def test_rejects_cold_to_hot_link(self):
        with pytest.raises(ValueError, match="warmer"):
            Cryostat(
                standard_stack(),
                links=[electrical_link("77K", "300K")],
            )

    def test_rejects_component_placed_twice(self):
        with pytest.raises(ValueError, match="placed twice"):
            Cryostat(
                standard_stack(),
                placements=[
                    ComponentPlacement("core", "77K", 1.0),
                    ComponentPlacement("core", "300K", 1.0),
                ],
            )

    def test_rejects_placement_on_unknown_stage(self):
        with pytest.raises(ValueError, match="unknown stage"):
            Cryostat(
                standard_stack(),
                placements=[ComponentPlacement("core", "40K", 1.0)],
            )


@pytest.fixture
def reference():
    return Cryostat(
        standard_stack(),
        links=[
            electrical_link("300K", "77K", lanes=64, name="host-io"),
            electrical_link("77K", "4K", lanes=16, name="ctrl-io"),
        ],
        placements=[
            ComponentPlacement("core", "77K", 10.0),
            ComponentPlacement("dram", "300K", 20.0),
            ComponentPlacement("qctrl", "4K", 0.05),
        ],
    )


class TestLedger:
    def test_ledger_conserves_heat(self, reference):
        for stage in reference.ledger().stages:
            assert stage.lifted_w == stage.device_w + stage.link_heat_w
            assert stage.cooling_w == pytest.approx(
                stage.lifted_w * stage.cooling_overhead
            )
            assert stage.wall_plug_w == pytest.approx(
                stage.device_w + stage.cooling_w
            )

    def test_link_heat_charged_to_cold_stage(self, reference):
        ledger = reference.ledger()
        ctrl_io = reference.links[1]
        assert ledger.stage("4K").link_heat_w == ctrl_io.cold_heatload_w
        host_io = reference.links[0]
        assert ledger.stage("77K").link_heat_w == host_io.cold_heatload_w

    def test_hot_side_power_charged_to_hot_stage(self, reference):
        ledger = reference.ledger()
        host_io, ctrl_io = reference.links
        assert ledger.stage("300K").device_w == 20.0 + host_io.hot_side_w
        assert ledger.stage("77K").device_w == 10.0 + ctrl_io.hot_side_w

    def test_totals_sum_stages(self, reference):
        ledger = reference.ledger()
        assert ledger.wall_plug_w == pytest.approx(
            sum(s.wall_plug_w for s in ledger.stages)
        )
        assert reference.wall_plug_w() == ledger.wall_plug_w

    def test_to_dict_round_trips_the_numbers(self, reference):
        payload = reference.ledger().to_dict()
        assert {s["stage"] for s in payload["stages"]} == {"300K", "77K", "4K"}
        assert payload["totals"]["wall_plug_w"] == pytest.approx(
            reference.wall_plug_w()
        )
        for stage in payload["stages"]:
            assert stage["lifted_w"] == stage["device_w"] + stage["link_heat_w"]

    def test_moving_colder_never_cheaper(self, reference):
        base = reference.wall_plug_w()
        for component, colder in (
            ("dram", "77K"),
            ("dram", "4K"),
            ("core", "4K"),
        ):
            moved = reference.with_placement(component, colder)
            assert moved.wall_plug_w() >= base

    def test_4k_watt_costs_three_orders_more_than_77k(self):
        at_77 = Cryostat.two_stage(77.0, 1.0).wall_plug_w()
        at_4 = Cryostat.two_stage(4.0, 1.0, carnot_fraction=0.01).wall_plug_w()
        assert at_4 / at_77 > 500.0


class TestDegenerateTwoStage:
    """The historic closed form must come back bit-identically."""

    def test_bit_identical_to_closed_form(self):
        for temperature, device in (
            (77.0, 1.0),
            (77.0, 0.123456789),
            (135.0, 2.5),
            (250.0, 0.001),
        ):
            overhead = carnot_cooling_overhead(temperature)
            wall = Cryostat.two_stage(
                temperature, device, overhead=overhead
            ).wall_plug_w()
            assert wall == device * (1.0 + overhead)

    def test_ambient_collapses_to_device_power(self):
        assert Cryostat.two_stage(300.0, 7.5).wall_plug_w() == 7.5
        assert Cryostat.two_stage(350.0, 7.5).wall_plug_w() == 7.5

    def test_temperature_point_evaluates_through_cryostat(self):
        optimizer = TemperatureOptimizer(1.0, 1.85)
        for temperature in (77.0, 100.0, 135.0, 200.0, 300.0):
            point = optimizer.point(temperature)
            assert point.total_power_rel == point.device_power_rel * (
                1.0 + point.cooling_overhead
            )

    def test_tco_agrees_with_closed_form(self):
        optimizer = TemperatureOptimizer(1.0, 1.85)
        point = optimizer.point(100.0)
        cryostat = Cryostat.two_stage(
            100.0, point.device_power_rel, overhead=point.cooling_overhead
        )
        assert cryostat_tco_w(cryostat) == point.tco_rel

    def test_multi_stage_tco_prices_every_stage(self, reference):
        ledger = reference.ledger()
        cold_device = sum(
            s.device_w for s in ledger.stages if s.temperature_k < 300.0
        )
        expected = (
            ledger.wall_plug_w
            + COOLER_CAPEX_FACTOR * ledger.cooling_w
            + LN2_INVENTORY_FACTOR * cold_device
        )
        assert cryostat_tco_w(reference) == pytest.approx(expected)


class TestLerpClamp:
    def test_clamps_below_77_and_warns(self):
        from repro.power.tco import _lerp
        from repro.util.guards import use_guards

        with use_guards() as guards:
            assert _lerp(1.0, 2.0, 50.0) == 1.0
            assert _lerp(1.0, 2.0, 350.0) == 2.0
        findings = guards.to_dicts()
        assert len(findings) == 2
        assert all(f["site"] == "tco.lerp" for f in findings)
        assert all("clamped" in f["message"] for f in findings)

    def test_silent_inside_the_anchors(self):
        from repro.power.tco import _lerp
        from repro.util.guards import use_guards

        with use_guards() as guards:
            mid = _lerp(1.0, 2.0, 188.5)
        assert guards.to_dicts() == []
        assert math.isclose(mid, 1.5)
