"""Trace-driven coherent multicore simulation."""

import pytest

from repro.system.config import CHP_77K_CRYOBUS, CHP_77K_MESH
from repro.system.multicore import MulticoreSystem
from repro.system.tracesim import TraceDrivenSimulator
from repro.workloads.profiles import by_name


@pytest.fixture(scope="module")
def mesh_sim():
    return TraceDrivenSimulator(CHP_77K_MESH, n_cores=16)


@pytest.fixture(scope="module")
def bus_sim():
    return TraceDrivenSimulator(CHP_77K_CRYOBUS, n_cores=16)


class TestBasics:
    def test_result_accounting(self, mesh_sim):
        result = mesh_sim.run(by_name("canneal"), n_cycles=8000)
        assert result.n_cores == 16
        assert result.cycles == 16 * 8000
        assert 0.0 < result.ipc < 2.0

    def test_protocol_matches_fabric(self, mesh_sim, bus_sim):
        from repro.memory.coherence import DirectoryProtocol, SnoopingProtocol

        assert isinstance(mesh_sim._protocol(), DirectoryProtocol)
        assert isinstance(bus_sim._protocol(), SnoopingProtocol)

    def test_deterministic(self, mesh_sim):
        a = mesh_sim.run(by_name("ferret"), n_cycles=6000, seed="t")
        b = mesh_sim.run(by_name("ferret"), n_cycles=6000, seed="t")
        assert a.ipc == b.ipc
        assert vars(a.protocol_stats) == vars(b.protocol_stats)

    def test_memory_bound_workload_slower(self, mesh_sim):
        heavy = mesh_sim.run(by_name("canneal"), n_cycles=8000)
        light = mesh_sim.run(by_name("blackscholes"), n_cycles=8000)
        assert heavy.ipc < light.ipc

    def test_rejects_degenerate_configs(self):
        with pytest.raises(ValueError):
            TraceDrivenSimulator(CHP_77K_MESH, n_cores=1)
        with pytest.raises(ValueError):
            TraceDrivenSimulator(CHP_77K_MESH).run(by_name("canneal"), n_cycles=10)


class TestCrossValidation:
    """Detailed mode must agree with the analytic CPI model."""

    @pytest.mark.parametrize("workload", ["canneal", "ferret", "blackscholes"])
    def test_ipc_within_tens_of_percent(self, mesh_sim, workload):
        trace = mesh_sim.run(by_name(workload), n_cycles=15000)
        analytic = MulticoreSystem(CHP_77K_MESH).evaluate(by_name(workload))
        assert trace.ipc == pytest.approx(analytic.ipc, rel=0.40)

    def test_snooping_beats_directory_on_sharing(self, mesh_sim, bus_sim):
        """The coherence microscopy agrees with the analytic ordering."""
        profile = by_name("ferret")
        mesh = mesh_sim.run(profile, n_cycles=12000)
        bus = bus_sim.run(profile, n_cycles=12000)
        assert bus.ipc >= mesh.ipc

    def test_sharing_workloads_show_c2c_traffic(self, bus_sim):
        sharing = bus_sim.run(by_name("streamcluster"), n_cycles=20000)
        private = bus_sim.run(by_name("blackscholes"), n_cycles=20000)
        share_rate = sharing.protocol_stats.cache_to_cache / max(
            sharing.protocol_stats.misses, 1
        )
        private_rate = private.protocol_stats.cache_to_cache / max(
            private.protocol_stats.misses, 1
        )
        assert share_rate >= private_rate
