"""Traffic patterns and the cycle-accurate NoC simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.bus import CryoBusDesign, SharedBusDesign
from repro.noc.simulator import NocSimulator
from repro.noc.topology import FlattenedButterfly, Mesh
from repro.noc.traffic import TrafficPattern, make_pattern


class TestTrafficPatterns:
    def test_known_patterns_construct(self):
        for name in ("uniform", "transpose", "hotspot", "bit_reverse", "burst"):
            assert make_pattern(name, 64).name == name

    def test_unknown_pattern_raises(self):
        with pytest.raises(ValueError, match="uniform"):
            make_pattern("tornado", 64)

    def test_uniform_never_self_addressed(self):
        pattern = make_pattern("uniform", 16)
        for _, src, dst in pattern.packets(0.5, 200):
            assert src != dst

    def test_transpose_is_deterministic_permutation(self):
        pattern = make_pattern("transpose", 64)
        for _, src, dst in pattern.packets(0.3, 50):
            x, y = src % 8, src // 8
            assert dst == x * 8 + y

    def test_bit_reverse_mapping(self):
        pattern = make_pattern("bit_reverse", 64)
        for _, src, dst in pattern.packets(0.3, 50):
            assert dst == int(format(src, "06b")[::-1], 2)

    def test_injection_rate_statistics(self):
        pattern = make_pattern("uniform", 64)
        count = sum(1 for _ in pattern.packets(0.01, 4000))
        expected = 0.01 * 64 * 4000
        assert count == pytest.approx(expected, rel=0.15)

    def test_burst_matches_average_rate(self):
        pattern = make_pattern("burst", 64)
        count = sum(1 for _ in pattern.packets(0.01, 6000))
        expected = 0.01 * 64 * 6000
        assert count == pytest.approx(expected, rel=0.25)

    def test_hotspot_concentrates_traffic(self):
        pattern = make_pattern("hotspot", 64)
        hot_targets = {0, 16, 32, 48}
        hits = total = 0
        for _, _, dst in pattern.packets(0.05, 2000):
            total += 1
            hits += dst in hot_targets
        assert hits / total > 0.25  # ~30 % by construction

    def test_hotspot_fraction_not_deflated_by_self_draws(self):
        """A hot source drawing itself must redraw among the other hot
        nodes, not fall back to uniform -- otherwise the effective
        hotspot fraction (and offered load) lands below nominal."""
        pattern = make_pattern("hotspot", 64)
        hot_targets = {0, 16, 32, 48}
        hits = total = 0
        for _, src, dst in pattern.packets(0.05, 4000):
            if src not in hot_targets:
                continue
            total += 1
            hits += dst in hot_targets
        # Hot sources see the same ~30 % bias as everyone else.
        assert hits / total > 0.25

    def test_hotspot_never_self_addressed(self):
        pattern = make_pattern("hotspot", 16)
        for _, src, dst in pattern.packets(0.3, 500):
            assert src != dst

    def test_deterministic_given_seed(self):
        pattern = make_pattern("uniform", 16)
        first = list(pattern.packets(0.05, 100, seed="s"))
        second = list(pattern.packets(0.05, 100, seed="s"))
        assert first == second

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            list(make_pattern("uniform", 16).packets(1.5, 10))


class TestRouterNetworkSim:
    @pytest.fixture(scope="class")
    def sim(self):
        return NocSimulator(n_cycles=4000)

    def test_zero_load_latency_near_analytic(self, sim):
        mesh = Mesh(64)
        pattern = make_pattern("uniform", 64)
        point = sim.simulate_router_network(mesh, pattern, 0.002)
        # ~5.33 hops * (1 router + 1 link) + inject/eject.
        assert 8 < point.mean_latency_cycles < 18
        assert not point.saturated

    def test_latency_rises_with_load(self, sim):
        mesh = Mesh(64)
        pattern = make_pattern("uniform", 64)
        low = sim.simulate_router_network(mesh, pattern, 0.005)
        high = sim.simulate_router_network(mesh, pattern, 0.08)
        assert high.mean_latency_cycles > low.mean_latency_cycles

    def test_three_cycle_router_slower(self, sim):
        mesh = Mesh(64)
        pattern = make_pattern("uniform", 64)
        fast = sim.simulate_router_network(mesh, pattern, 0.01, router_cycles=1)
        slow = sim.simulate_router_network(mesh, pattern, 0.01, router_cycles=3)
        assert slow.mean_latency_cycles > fast.mean_latency_cycles + 5

    def test_cold_links_dont_change_mesh_much(self, sim):
        """Router NoCs barely benefit from faster links (Guideline #1)."""
        mesh = Mesh(64)
        pattern = make_pattern("uniform", 64)
        warm = sim.simulate_router_network(mesh, pattern, 0.01, hops_per_cycle=4)
        cold = sim.simulate_router_network(mesh, pattern, 0.01, hops_per_cycle=12)
        assert warm.mean_latency_cycles - cold.mean_latency_cycles < 2.0

    def test_fb_lower_latency_than_mesh(self, sim):
        pattern = make_pattern("uniform", 64)
        mesh = sim.simulate_router_network(Mesh(64), pattern, 0.005)
        fb = sim.simulate_router_network(FlattenedButterfly(64), pattern, 0.005)
        assert fb.mean_latency_cycles < mesh.mean_latency_cycles

    def test_node_count_mismatch_raises(self, sim):
        with pytest.raises(ValueError):
            sim.simulate_router_network(Mesh(64), make_pattern("uniform", 16), 0.01)


class TestBusSim:
    @pytest.fixture(scope="class")
    def sim(self):
        return NocSimulator(n_cycles=4000)

    def test_cryobus_zero_load_is_four_cycles(self, sim):
        point = sim.simulate_bus(
            CryoBusDesign(64), make_pattern("uniform", 64), 0.0005, hops_per_cycle=12
        )
        assert point.mean_latency_cycles == pytest.approx(4.0, abs=0.5)

    def test_300k_bus_saturates_at_parsec_rates(self, sim):
        """Guideline #2: the 300 K bus cannot even run PARSEC."""
        point = sim.simulate_bus(
            SharedBusDesign(64), make_pattern("uniform", 64), 0.004, hops_per_cycle=4
        )
        assert point.saturated

    def test_77k_bus_survives_parsec_rates(self, sim):
        point = sim.simulate_bus(
            SharedBusDesign(64), make_pattern("uniform", 64), 0.002, hops_per_cycle=12
        )
        assert not point.saturated

    def test_cryobus_survives_spec_rates(self, sim):
        point = sim.simulate_bus(
            CryoBusDesign(64), make_pattern("uniform", 64), 0.008, hops_per_cycle=12
        )
        assert not point.saturated

    def test_interleaving_extends_saturation(self, sim):
        pattern = make_pattern("uniform", 64)
        rate = 0.018
        single = sim.simulate_bus(CryoBusDesign(64), pattern, rate, hops_per_cycle=12)
        double = sim.simulate_bus(
            CryoBusDesign(64, interleave_ways=2), pattern, rate, hops_per_cycle=12
        )
        assert double.mean_latency_cycles < single.mean_latency_cycles

    def test_pattern_insensitivity_of_bus(self, sim):
        """Broadcast buses don't care about the destination pattern."""
        rate = 0.004
        results = []
        for name in ("uniform", "transpose", "hotspot"):
            point = sim.simulate_bus(
                CryoBusDesign(64), make_pattern(name, 64), rate, hops_per_cycle=12
            )
            results.append(point.mean_latency_cycles)
        assert max(results) - min(results) < 2.0

    def test_acceptance_below_saturation_is_full(self, sim):
        point = sim.simulate_bus(
            CryoBusDesign(64), make_pattern("uniform", 64), 0.003, hops_per_cycle=12
        )
        assert point.acceptance > 0.95

    def test_node_count_mismatch_raises(self, sim):
        with pytest.raises(ValueError):
            sim.simulate_bus(
                CryoBusDesign(64), make_pattern("uniform", 16), 0.01, hops_per_cycle=12
            )

    def test_saturated_bus_counts_backlog_as_undelivered(self, sim):
        """The serial drain stops at the horizon; the backlog shows up
        as lost acceptance instead of inflating the drain time."""
        point = sim.simulate_bus(
            SharedBusDesign(64), make_pattern("uniform", 64), 0.02, hops_per_cycle=4
        )
        assert point.saturated
        assert point.delivered_packets < point.offered_packets


class TestSimulatorValidation:
    def test_rejects_short_simulations(self):
        with pytest.raises(ValueError):
            NocSimulator(n_cycles=10)

    def test_rejects_bad_warmup(self):
        with pytest.raises(ValueError):
            NocSimulator(warmup_fraction=1.0)

    def test_rejects_bad_flits(self):
        with pytest.raises(ValueError):
            NocSimulator(packet_flits=0)

    @settings(max_examples=6, deadline=None)
    @given(rate=st.floats(min_value=0.0005, max_value=0.01))
    def test_bus_latency_at_least_zero_load(self, rate):
        sim = NocSimulator(n_cycles=1500)
        bus = CryoBusDesign(64)
        point = sim.simulate_bus(bus, make_pattern("uniform", 64), rate, 12)
        if point.delivered_packets:
            assert point.mean_latency_cycles >= bus.zero_load_latency_cycles(12) - 1e-9
