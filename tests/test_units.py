"""Units and conversion helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.util.units import (
    Frequency,
    cycles_at,
    delay_to_frequency,
    frequency_to_period_ns,
    ns_to_cycles,
)


class TestFrequency:
    def test_period_of_4ghz(self):
        assert Frequency(4.0).period_ns == pytest.approx(0.25)

    def test_period_ps(self):
        assert Frequency(4.0).period_ps == pytest.approx(250.0)

    def test_from_period_roundtrip(self):
        freq = Frequency.from_period_ns(0.125)
        assert freq.gigahertz == pytest.approx(8.0)

    def test_scaled(self):
        assert Frequency(4.0).scaled(1.5).gigahertz == pytest.approx(6.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Frequency(0.0)
        with pytest.raises(ValueError):
            Frequency(-1.0)

    def test_from_period_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Frequency.from_period_ns(0.0)


class TestConversions:
    def test_delay_to_frequency(self):
        assert delay_to_frequency(0.25) == pytest.approx(4.0)

    def test_frequency_to_period(self):
        assert frequency_to_period_ns(4.0) == pytest.approx(0.25)

    def test_delay_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            delay_to_frequency(0.0)

    def test_frequency_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            frequency_to_period_ns(-4.0)


class TestNsToCycles:
    def test_zero_latency_is_zero_cycles(self):
        assert ns_to_cycles(0.0, 4.0) == 0

    def test_sub_cycle_rounds_up(self):
        assert ns_to_cycles(0.1, 4.0) == 1

    def test_exact_boundary_no_spurious_extra_cycle(self):
        # 0.25 ns at 4 GHz is exactly one cycle despite float fuzz.
        assert ns_to_cycles(0.25, 4.0) == 1
        assert ns_to_cycles(0.75, 4.0) == 3

    def test_just_over_boundary(self):
        assert ns_to_cycles(0.2501, 4.0) == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ns_to_cycles(-0.1, 4.0)

    @given(
        latency=st.floats(min_value=1e-6, max_value=1e3),
        freq=st.floats(min_value=0.1, max_value=20.0),
    )
    def test_cycles_bound_latency(self, latency, freq):
        cycles = ns_to_cycles(latency, freq)
        assert cycles >= 1
        # Rounding up never undercounts by more than one full cycle.
        assert cycles * (1.0 / freq) >= latency - 1e-6
        assert (cycles - 1) * (1.0 / freq) <= latency + 1e-6

    def test_fractional_cycles(self):
        assert cycles_at(0.5, 4.0) == pytest.approx(2.0)

    def test_fractional_rejects_negative(self):
        with pytest.raises(ValueError):
            cycles_at(-1.0, 4.0)
