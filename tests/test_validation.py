"""Validation package: synthetic rigs and model-vs-measurement checks."""

import pytest

from repro.tech.constants import T_ROOM, T_VALIDATION
from repro.validation.measurements import (
    FREQUENCY_STEP_GHZ,
    MeasurementCampaign,
    VALIDATION_RIGS,
)
from repro.validation.validate import (
    validate_pipeline_model,
    validate_router_model,
    validate_wire_link_model,
)


class TestRigs:
    def test_table2_inventory(self):
        nodes = [rig.technology_nm for rig in VALIDATION_RIGS]
        assert nodes == [32, 22, 14]
        names = [rig.model_name for rig in VALIDATION_RIGS]
        assert names == ["i7-2700K", "i7-4790K", "i5-6600K"]

    def test_boards_match_table2(self):
        assert VALIDATION_RIGS[2].mainboard == "GA-Z170X-Gaming 7"


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return MeasurementCampaign()

    def test_boot_quantisation(self, campaign):
        measurement = campaign.measure_domain(VALIDATION_RIGS[0], T_ROOM, "core")
        steps = measurement.last_success_ghz / FREQUENCY_STEP_GHZ
        assert steps == pytest.approx(round(steps))
        assert measurement.first_fail_ghz == pytest.approx(
            measurement.last_success_ghz + FREQUENCY_STEP_GHZ
        )

    def test_cold_core_runs_faster(self, campaign):
        rig = VALIDATION_RIGS[-1]
        warm = campaign.measure_domain(rig, T_ROOM, "core")
        cold = campaign.measure_domain(rig, T_VALIDATION, "core")
        assert cold.max_stable_ghz > warm.max_stable_ghz

    def test_core_gains_more_than_uncore(self, campaign):
        """Wire-richer core domains benefit more from cooling."""
        rig = VALIDATION_RIGS[-1]
        core = campaign.measured_speedup(rig, T_VALIDATION, "core")["speedup"]
        uncore = campaign.measured_speedup(rig, T_VALIDATION, "uncore")["speedup"]
        assert core > uncore

    def test_error_bars_bracket_measurement(self, campaign):
        rig = VALIDATION_RIGS[0]
        measured = campaign.measured_speedup(rig, T_VALIDATION, "core")
        assert measured["lower"] <= measured["speedup"] <= measured["upper"]

    def test_unknown_domain_raises(self, campaign):
        with pytest.raises(ValueError):
            campaign.measure_domain(VALIDATION_RIGS[0], T_ROOM, "gpu")

    def test_deterministic_campaigns(self):
        a = MeasurementCampaign().measured_speedup(
            VALIDATION_RIGS[1], T_VALIDATION, "core"
        )
        b = MeasurementCampaign().measured_speedup(
            VALIDATION_RIGS[1], T_VALIDATION, "core"
        )
        assert a == b


class TestModelValidation:
    def test_pipeline_prediction_close_to_paper(self):
        """Paper: model 15.0 % vs measured 12.1 % at 135 K."""
        validation = validate_pipeline_model()
        assert validation.predicted_speedup == pytest.approx(1.15, abs=0.03)
        assert validation.error < 0.06

    def test_router_errors_small(self):
        for rig in VALIDATION_RIGS:
            validation = validate_router_model(rig)
            assert validation.error < 0.06, rig.model_name

    def test_router_prediction_marginal_speedup(self):
        validation = validate_router_model(VALIDATION_RIGS[-1])
        assert 1.05 < validation.predicted_speedup < 1.15

    def test_wire_link_fig10(self):
        """Paper: 3.05x at 77 K, within 1.6 % of Hspice."""
        validation = validate_wire_link_model()
        assert validation.predicted_speedup == pytest.approx(3.05, abs=0.2)
        assert validation.error < 0.05

    def test_wire_link_other_lengths(self):
        for length in (2.0, 4.0):
            validation = validate_wire_link_model(length_mm=length)
            assert validation.error < 0.10
