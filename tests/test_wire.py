"""CryoWireModel facade: unrepeated/repeated delays and Fig. 5 anchors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tech.constants import T_LN2, T_ROOM
from repro.tech.wire import CryoWireModel


class TestUnrepeated:
    def test_forwarding_wire_anchor(self, wire_model):
        """The 1686 um semi-global forwarding wire gains ~2.8x at 77 K."""
        speedup = wire_model.unrepeated_speedup("semi_global", 1686.0, T_LN2)
        assert speedup == pytest.approx(2.81, abs=0.15)

    def test_local_long_wire_approaches_295(self, wire_model):
        speedup = wire_model.unrepeated_speedup("local", 2500.0, T_LN2)
        assert 2.7 < speedup < 2.96

    def test_semi_global_long_wire_approaches_369(self, wire_model):
        speedup = wire_model.unrepeated_speedup("semi_global", 6000.0, T_LN2)
        assert 3.4 < speedup < 3.70

    def test_short_wires_gain_little(self, wire_model):
        """Short wires are driver-dominated: only the ~8 % logic gain."""
        speedup = wire_model.unrepeated_speedup("local", 10.0, T_LN2)
        assert 1.0 < speedup < 1.25

    def test_speedup_grows_with_length(self, wire_model):
        speedups = [
            wire_model.unrepeated_speedup("semi_global", length, T_LN2)
            for length in (50, 200, 800, 3000)
        ]
        assert speedups == sorted(speedups)

    def test_breakdown_components(self, wire_model):
        breakdown = wire_model.unrepeated_breakdown("semi_global", 1686.0)
        assert breakdown.total_ns == pytest.approx(
            breakdown.transistor_ns + breakdown.wire_ns
        )
        assert 0.0 < breakdown.wire_fraction < 1.0

    def test_long_wire_is_wire_dominated(self, wire_model):
        assert wire_model.unrepeated_breakdown("semi_global", 3000.0).wire_fraction > 0.8

    def test_rejects_negative_length(self, wire_model):
        with pytest.raises(ValueError):
            wire_model.unrepeated_delay("local", -1.0)

    def test_unknown_layer_raises(self, wire_model):
        with pytest.raises(KeyError):
            wire_model.unrepeated_delay("m9", 100.0)


class TestRepeated:
    def test_global_622mm_anchor(self, wire_model):
        assert wire_model.repeated_speedup("global", 6220.0, T_LN2) == pytest.approx(
            3.38, abs=0.15
        )

    def test_semi_900um_band(self, wire_model):
        speedup = wire_model.repeated_speedup("semi_global", 900.0, T_LN2)
        assert 1.6 < speedup < 2.6

    def test_repeated_beats_unrepeated_for_long_wires(self, wire_model):
        length = 8000.0
        repeated = wire_model.repeated_delay("global", length)
        # A matched unrepeated comparison: single driver, same layer.
        single = wire_model.optimizer("global").delay_with(length, 1, 590.0)
        assert repeated < single


class TestSweep:
    def test_sweep_returns_requested_lengths(self, wire_model):
        lengths = (100.0, 500.0)
        sweep = wire_model.speedup_sweep("local", lengths, T_LN2)
        assert set(sweep) == set(lengths)

    def test_room_sweep_is_flat(self, wire_model):
        sweep = wire_model.speedup_sweep("local", (100.0, 1000.0), T_ROOM)
        for value in sweep.values():
            assert value == pytest.approx(1.0)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        length=st.floats(min_value=1.0, max_value=10000.0),
        temp=st.floats(min_value=77.0, max_value=300.0),
    )
    def test_unrepeated_speedup_at_least_unity(self, wire_model, length, temp):
        assert wire_model.unrepeated_speedup("semi_global", length, temp) >= 0.999

    @settings(max_examples=40, deadline=None)
    @given(length=st.floats(min_value=10.0, max_value=10000.0))
    def test_delay_monotone_in_length(self, wire_model, length):
        shorter = wire_model.unrepeated_delay("local", length * 0.5)
        longer = wire_model.unrepeated_delay("local", length)
        assert shorter <= longer
