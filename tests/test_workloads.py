"""Workload profiles, prefetcher model, synthetic trace generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.prefetch import StridePrefetcher
from repro.workloads.profiles import (
    ALL_SUITES,
    CLOUDSUITE,
    PARSEC_2_1,
    QUANTUM,
    SPEC2006,
    SPEC2017,
    WorkloadProfile,
    by_name,
    injection_rate_range,
)
from repro.workloads.synthetic import SyntheticTraceGenerator


class TestProfileCatalogue:
    def test_parsec_has_13_workloads(self):
        assert len(PARSEC_2_1) == 13

    def test_all_names_unique(self):
        names = [p.name for suite in ALL_SUITES.values() for p in suite]
        assert len(names) == len(set(names))

    def test_by_name_finds_across_suites(self):
        assert by_name("streamcluster").suite == "parsec"
        assert by_name("mcf").suite == "spec2006"
        assert by_name("web_search").suite == "cloudsuite"

    def test_by_name_unknown_raises(self):
        assert pytest.raises(KeyError, by_name, "doom3")

    def test_miss_chain_monotone_for_all(self):
        for suite in ALL_SUITES.values():
            for profile in suite:
                assert profile.l1d_mpki >= profile.l2_mpki >= profile.l3_mpki

    def test_spec_has_no_sharing(self):
        for profile in (*SPEC2006, *SPEC2017):
            assert profile.sharing_fraction == 0.0
            assert profile.barrier_pki == 0.0

    def test_streamcluster_is_barrier_heavy(self):
        stream = by_name("streamcluster")
        assert stream.barrier_pki == max(p.barrier_pki for p in PARSEC_2_1)

    def test_quantum_suite_registered(self):
        assert ALL_SUITES["quantum"] is QUANTUM
        assert len(QUANTUM) == 3
        assert all(p.suite == "quantum" for p in QUANTUM)

    def test_by_name_finds_quantum_controller_workloads(self):
        decoder = by_name("qc_error_decoder")
        assert decoder.suite == "quantum"
        # The decoder is the memory-heavy outlier: it walks syndrome
        # history, so it misses far more than the streaming DSP kernels.
        assert decoder.l1d_mpki == max(p.l1d_mpki for p in QUANTUM)

    def test_quantum_kernels_are_streaming_low_miss(self):
        for profile in QUANTUM:
            if profile.name == "qc_error_decoder":
                continue
            assert profile.l2_mpki < 10.0
            assert profile.sharing_fraction <= 0.20

    def test_validation_rejects_inverted_chain(self):
        with pytest.raises(ValueError, match="monotone"):
            WorkloadProfile(
                "bad", "test", base_cpi=1.0, ilp=2.0, restarts_pki=1.0,
                l1d_mpki=1.0, l2_mpki=5.0, l3_mpki=0.1,
                barrier_pki=0.0, lock_pki=0.0, sharing_fraction=0.0,
            )

    def test_injection_rate_scales_with_ipc(self):
        profile = by_name("canneal")
        assert profile.injection_rate(1.0) == pytest.approx(
            2 * profile.injection_rate(0.5)
        )

    def test_injection_rate_rejects_bad_ipc(self):
        with pytest.raises(ValueError):
            by_name("canneal").injection_rate(0.0)


class TestInjectionBands:
    """Fig. 18's feasibility ordering across suites."""

    def test_parsec_band_lowest(self):
        parsec_lo, parsec_hi = injection_rate_range(PARSEC_2_1)
        spec_lo, spec_hi = injection_rate_range(SPEC2006)
        assert parsec_hi < spec_hi

    def test_range_requires_profiles(self):
        with pytest.raises(ValueError):
            injection_rate_range(())

    def test_spec_peaks_highest(self):
        _, spec_hi = injection_rate_range((*SPEC2006, *SPEC2017))
        _, cloud_hi = injection_rate_range(CLOUDSUITE)
        assert spec_hi > cloud_hi


class TestStridePrefetcher:
    def test_prefetch_traffic_positive(self):
        prefetcher = StridePrefetcher()
        assert prefetcher.prefetch_pki(by_name("gcc")) > 0

    def test_noc_requests_exceed_demand(self):
        prefetcher = StridePrefetcher()
        profile = by_name("gcc")
        assert prefetcher.noc_requests_pki(profile) > profile.l2_mpki

    def test_useful_prefetches_reduce_demand_misses(self):
        prefetcher = StridePrefetcher(useful_fraction=0.5)
        profile = by_name("mcf")
        assert prefetcher.effective_l2_mpki(profile) < profile.l2_mpki

    def test_effective_mpki_never_negative(self):
        prefetcher = StridePrefetcher(degree=4, useful_fraction=1.0)
        for profile in SPEC2006:
            assert prefetcher.effective_l2_mpki(profile) >= 0

    def test_hit_triggering_amplifies_low_miss_workloads(self):
        quiet = by_name("hmmer")
        with_hits = StridePrefetcher(hit_trigger_rate=0.01)
        without = StridePrefetcher(hit_trigger_rate=0.0)
        assert with_hits.prefetch_pki(quiet) > without.prefetch_pki(quiet)

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            StridePrefetcher(hit_trigger_rate=1.5)
        with pytest.raises(ValueError):
            StridePrefetcher(useful_fraction=-0.1)


class TestSyntheticTraces:
    def test_rate_matches_profile(self):
        profile = by_name("canneal")
        generator = SyntheticTraceGenerator(profile, n_cores=64, ipc=1.0)
        count = sum(1 for _ in generator.requests(2000))
        expected = profile.injection_rate(1.0) * 64 * 2000
        assert count == pytest.approx(expected, rel=0.2)

    def test_deterministic(self):
        profile = by_name("ferret")
        first = list(SyntheticTraceGenerator(profile, seed="t").requests(200))
        second = list(SyntheticTraceGenerator(profile, seed="t").requests(200))
        assert first == second

    def test_shared_fraction_respected(self):
        profile = by_name("streamcluster")  # sharing 0.6
        generator = SyntheticTraceGenerator(profile, n_cores=64)
        requests = list(generator.requests(4000))
        shared = sum(r.is_shared for r in requests) / len(requests)
        assert shared == pytest.approx(profile.sharing_fraction, abs=0.1)

    def test_private_addresses_disjoint_by_core(self):
        profile = by_name("canneal")
        generator = SyntheticTraceGenerator(profile, n_cores=8)
        base = SyntheticTraceGenerator.SHARED_LINES * 64
        for request in generator.requests(800):
            if not request.is_shared:
                assert request.address >= base

    def test_barriers_only_for_barrier_workloads(self):
        quiet = SyntheticTraceGenerator(by_name("mcf"))
        assert list(quiet.barrier_cycles(5000)) == []
        noisy = SyntheticTraceGenerator(by_name("streamcluster"))
        assert len(list(noisy.barrier_cycles(50000))) > 0

    def test_rejects_bad_cycles(self):
        generator = SyntheticTraceGenerator(by_name("mcf"))
        with pytest.raises(ValueError):
            list(generator.requests(0))

    def test_rejects_bad_cores(self):
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(by_name("mcf"), n_cores=0)

    @settings(max_examples=10, deadline=None)
    @given(ipc=st.floats(min_value=0.2, max_value=2.0))
    def test_requests_are_cycle_ordered(self, ipc):
        generator = SyntheticTraceGenerator(by_name("gcc"), n_cores=8, ipc=ipc)
        cycles = [r.cycle for r in generator.requests(300)]
        assert cycles == sorted(cycles)
