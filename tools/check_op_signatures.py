#!/usr/bin/env python
"""Guard the OperatingPoint currency: no new loose scalar-triple signatures.

Walks every Python file under ``src/`` and fails if any function signature
threads the legacy ``(temperature_k, vdd_v, vth_v)`` parameter triple.
Since the OperatingPoint refactor, the only sanctioned interpreter of
that form is :func:`repro.tech.operating_point.as_operating_point`; model
entry points take an ``OperatingPointLike`` (plus, transitionally, the
optional ``vdd_v``/``vth_v`` scalars the shim consumes). A signature that
names all three scalars re-introduces the pre-refactor style and is
rejected.

Usage: ``python tools/check_op_signatures.py [root]`` -- exits non-zero
with a listing of offending definitions. Run by CI next to the tests.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: The parameter names whose co-occurrence marks a legacy signature.
TRIPLE = frozenset({"temperature_k", "vdd_v", "vth_v"})

#: The shim module itself defines the legacy form once, on purpose.
EXEMPT_FILES = ("repro/tech/operating_point.py",)

#: ``module-path::qualname`` entries allowed to keep the triple -- these
#: ARE deprecation shims (they forward to ``as_operating_point``).
EXEMPT_FUNCTIONS = frozenset(
    {
        "repro/noc/latency.py::AnalyticNocModel.__init__",
    }
)


def _argument_names(node: ast.FunctionDef) -> List[str]:
    args = node.args
    every = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    return [a.arg for a in every]


def _walk_functions(
    tree: ast.AST,
) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """Yield ``(qualname, node)`` for every function definition."""

    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.FunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from visit(child, f"{qualname}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def find_violations(root: Path) -> List[str]:
    """Legacy scalar-triple signatures under ``root``, as report lines."""
    violations = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if relative.endswith(EXEMPT_FILES):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for qualname, node in _walk_functions(tree):
            if not TRIPLE.issubset(_argument_names(node)):
                continue
            if f"{relative}::{qualname}" in EXEMPT_FUNCTIONS:
                continue
            violations.append(
                f"{relative}:{node.lineno}: {qualname} threads the legacy "
                "(temperature_k, vdd_v, vth_v) scalar triple -- take an "
                "OperatingPoint instead (repro.tech.operating_point)"
            )
    return violations


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent / "src"
    violations = find_violations(root)
    for line in violations:
        print(line)
    if violations:
        print(f"{len(violations)} legacy operating-point signature(s) found")
        return 1
    print(f"operating-point signatures clean under {root}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
