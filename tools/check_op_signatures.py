#!/usr/bin/env python
"""Guard the OperatingPoint currency: no new loose scalar-triple signatures.

Walks every Python file under ``src/`` and fails if any function signature
threads the legacy ``(temperature_k, vdd_v, vth_v)`` parameter triple.
Since the OperatingPoint refactor, the only sanctioned interpreter of
that form is :func:`repro.tech.operating_point.as_operating_point`; model
entry points take an ``OperatingPointLike`` (plus, transitionally, the
optional ``vdd_v``/``vth_v`` scalars the shim consumes). A signature that
names all three scalars re-introduces the pre-refactor style and is
rejected.

Since the batch API landed, the shim itself is deprecated: calling it
with a bare temperature draws a ``DeprecationWarning``. The second check
(:func:`find_shim_calls`) freezes the set of ``as_operating_point`` call
sites at the per-file counts of the existing public entry points
(:data:`SHIM_CALL_BUDGET`) so no *new* code routes through the shim --
new call sites must construct an :class:`OperatingPoint` (or an
:class:`~repro.tech.batch.OperatingPointBatch`) explicitly.

Usage: ``python tools/check_op_signatures.py [root]`` -- exits non-zero
with a listing of offending definitions. Run by CI next to the tests.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: The parameter names whose co-occurrence marks a legacy signature.
TRIPLE = frozenset({"temperature_k", "vdd_v", "vth_v"})

#: The shim module defines the legacy form once, on purpose; the batch
#: module names the same triple as its *array columns* -- the sanctioned
#: plural currency, not a loose scalar signature.
EXEMPT_FILES = ("repro/tech/operating_point.py", "repro/tech/batch.py")

#: ``module-path::qualname`` entries allowed to keep the triple -- these
#: ARE deprecation shims (they forward to ``as_operating_point``).
EXEMPT_FUNCTIONS = frozenset(
    {
        "repro/noc/latency.py::AnalyticNocModel.__init__",
    }
)


def _argument_names(node: ast.FunctionDef) -> List[str]:
    args = node.args
    every = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    return [a.arg for a in every]


def _walk_functions(
    tree: ast.AST,
) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """Yield ``(qualname, node)`` for every function definition."""

    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.FunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from visit(child, f"{qualname}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def find_violations(root: Path) -> List[str]:
    """Legacy scalar-triple signatures under ``root``, as report lines."""
    violations = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if relative.endswith(EXEMPT_FILES):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for qualname, node in _walk_functions(tree):
            if not TRIPLE.issubset(_argument_names(node)):
                continue
            if f"{relative}::{qualname}" in EXEMPT_FUNCTIONS:
                continue
            violations.append(
                f"{relative}:{node.lineno}: {qualname} threads the legacy "
                "(temperature_k, vdd_v, vth_v) scalar triple -- take an "
                "OperatingPoint instead (repro.tech.operating_point)"
            )
    return violations


#: Frozen per-file budget of ``as_operating_point`` call sites: the
#: transitional public entry points that still accept the legacy scalar
#: form. Anything beyond these counts is a *new* shim use and fails CI;
#: shrink a file's budget when you migrate its callers.
SHIM_CALL_BUDGET = {
    "repro/circuits/simulator.py": 4,
    "repro/memory/cacti.py": 3,
    "repro/memory/cll_dram.py": 2,
    "repro/noc/latency.py": 2,
    "repro/noc/link.py": 2,
    "repro/noc/router.py": 2,
    "repro/tech/metal.py": 2,
    "repro/tech/mosfet.py": 5,
    "repro/tech/repeater.py": 3,
    "repro/tech/wire.py": 5,
}

#: Name of the deprecation shim, as called (bare or attribute access).
_SHIM_NAME = "as_operating_point"


def _is_shim_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == _SHIM_NAME
    if isinstance(func, ast.Attribute):
        return func.attr == _SHIM_NAME
    return False


def find_shim_calls(root: Path) -> List[str]:
    """New ``as_operating_point`` call sites beyond the frozen budget.

    Counts actual call expressions per file (imports and re-exports are
    free) and reports every file whose count exceeds its
    :data:`SHIM_CALL_BUDGET` entry, listing the call lines so the
    offender is easy to locate.
    """
    violations = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if relative.endswith(EXEMPT_FILES):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        lines = [
            node.lineno
            for node in ast.walk(tree)
            if isinstance(node, ast.Call) and _is_shim_call(node)
        ]
        budget = SHIM_CALL_BUDGET.get(relative, 0)
        if len(lines) > budget:
            violations.append(
                f"{relative}: {len(lines)} as_operating_point call(s) at "
                f"line(s) {sorted(lines)} exceeds the frozen budget of "
                f"{budget} -- the shim is deprecated; construct an "
                "OperatingPoint (or OperatingPointBatch) explicitly"
            )
    return violations


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent / "src"
    violations = find_violations(root) + find_shim_calls(root)
    for line in violations:
        print(line)
    if violations:
        print(f"{len(violations)} operating-point policy violation(s) found")
        return 1
    print(f"operating-point signatures and shim-call budget clean under {root}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
