"""Load-test harness for ``cryowire serve``.

Replays a synthetic query stream against a running server (or one it
boots itself with ``--self-host``) and reports the numbers that matter
for a long-running model service:

* **diurnal replay** — an open-loop, paced phase whose request rate
  follows a sinusoidal day/night profile compressed into the test
  duration (quiet troughs, busy peaks). Per-request latencies give the
  p50/p99; the server's ``/stats`` gives the warm-context hit rate and
  the micro-batcher's coalescing rate.
* **A/B throughput** (``--self-host`` only) — closed-loop clients hammer
  a batching-enabled server and a batching-disabled twin with the same
  query mix; the ratio is what micro-batching is worth. The queries all
  carry a wire spec (a repeater optimisation per point), so the control
  pays a real model evaluation per request rather than a dict lookup.
* **overload** (``--overload``) — closed-loop clients drive a small-
  capacity server at ~5x its admission limit and assert shed-not-queued
  behavior: excess load is answered ``503 overloaded`` + ``Retry-After``
  (not queued), admitted-request p99 stays inside the deadline budget,
  the client-side and server-side 503/408 accounting reconciles, and
  zero responses are torn.

Usage::

    python tools/loadtest.py --self-host --duration 8
    python tools/loadtest.py --url http://127.0.0.1:8077 --duration 10
    python tools/loadtest.py --self-host --bench-file BENCH_serve.json
    python tools/loadtest.py --overload-only --duration 6

``--require-coalescing`` exits non-zero unless the batcher actually
coalesced (CI's regression tripwire); ``--bench-file`` appends the run
to a trajectory JSON (the ``BENCH_serve.json`` idiom).

Stdlib only — ``http.client`` with one keep-alive connection per client
thread, no external load-generation dependency.
"""

from __future__ import annotations

import argparse
import http.client
import json
import math
import random
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

#: The query mix draws operating points from the calibrated domain.
TEMPERATURE_RANGE_K = (77.0, 300.0)
VDD_RANGE_V = (0.6, 1.25)
VTH_V = 0.25
WIRE_LENGTHS_UM = (500.0, 2000.0, 6220.0)
CARDS = ("freepdk45", "industry_2z")

#: Repeated grids in the diurnal mix (dashboards re-requesting the same
#: sweep — the warm-context story).
GRID_TEMPERATURES = ([77.0, 135.0, 200.0, 250.0, 300.0], [77.0, 300.0])


def _connect(url: str) -> http.client.HTTPConnection:
    parts = urlsplit(url)
    return http.client.HTTPConnection(parts.hostname, parts.port, timeout=30)


def _post(
    conn: http.client.HTTPConnection, path: str, payload: Dict
) -> Tuple[int, Dict]:
    body = json.dumps(payload).encode("utf-8")
    conn.request(
        "POST", path, body=body, headers={"Content-Type": "application/json"}
    )
    response = conn.getresponse()
    data = response.read()
    return response.status, json.loads(data)


def _post_full(
    conn: http.client.HTTPConnection,
    path: str,
    payload: Dict,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Dict[str, str], Dict]:
    """Like :func:`_post` but also returns the response headers
    (lower-cased names) — the overload phase checks ``Retry-After``."""
    body = json.dumps(payload).encode("utf-8")
    request_headers = {"Content-Type": "application/json"}
    if headers:
        request_headers.update(headers)
    conn.request("POST", path, body=body, headers=request_headers)
    response = conn.getresponse()
    data = response.read()
    response_headers = {k.lower(): v for k, v in response.getheaders()}
    return response.status, response_headers, json.loads(data)


def _get(conn: http.client.HTTPConnection, path: str) -> Dict:
    conn.request("GET", path)
    response = conn.getresponse()
    return json.loads(response.read())


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def make_point_query(rng: random.Random, fresh: bool = True) -> Dict:
    """One synthetic ``/v1/query`` body (fresh = continuum-random point)."""
    t = rng.uniform(*TEMPERATURE_RANGE_K)
    vdd = rng.uniform(*VDD_RANGE_V)
    if not fresh:
        # A finite pool of revisited points (scalar-memo hits possible).
        t = round(t, 0)
        vdd = round(vdd, 1)
    return {
        "operating_point": {
            "temperature_k": t,
            "vdd_v": max(vdd, VTH_V + 0.1),
            "vth_v": VTH_V,
        },
        "card": rng.choice(CARDS),
        "wire": {
            "layer": "global",
            "length_um": rng.choice(WIRE_LENGTHS_UM),
        },
    }


def make_grid_query(rng: random.Random) -> Dict:
    """A repeated dashboard-style grid (warms the whole-batch memo)."""
    return {
        "temperature_k": rng.choice(GRID_TEMPERATURES),
        "vdd_v": 0.64,
        "vth_v": 0.25,
        "card": "freepdk45",
    }


def diurnal_rate(t_s: float, duration_s: float, peak_rps: float) -> float:
    """Sinusoidal day/night request rate: trough at the ends, peak mid."""
    phase = 2.0 * math.pi * (t_s / duration_s)
    # 0.15 floor keeps the night-time trough non-zero (a real service
    # never goes fully silent) while the peak reaches peak_rps.
    return peak_rps * (0.15 + 0.85 * 0.5 * (1.0 - math.cos(phase)))


def run_diurnal_phase(
    url: str,
    duration_s: float,
    clients: int,
    peak_rps: float,
    seed: int,
) -> Dict:
    """Open-loop paced replay following the diurnal profile."""
    rng = random.Random(seed)
    # Pre-build the arrival schedule by integrating the rate curve in
    # small ticks (fractional arrivals accumulate across ticks).
    tick_s = 0.02
    schedule: List[Tuple[float, str, Dict]] = []
    credit = 0.0
    t = 0.0
    while t < duration_s:
        credit += diurnal_rate(t, duration_s, peak_rps) * tick_s
        while credit >= 1.0:
            credit -= 1.0
            if rng.random() < 0.1:
                schedule.append((t, "/v1/grid", make_grid_query(rng)))
            else:
                schedule.append(
                    (t, "/v1/query", make_point_query(rng, fresh=rng.random() < 0.5))
                )
        t += tick_s
    queue_lock = threading.Lock()
    cursor = [0]
    latencies: List[float] = []
    errors = [0]
    start = time.monotonic()

    def worker() -> None:
        conn = _connect(url)
        try:
            while True:
                with queue_lock:
                    if cursor[0] >= len(schedule):
                        return
                    send_at, path, payload = schedule[cursor[0]]
                    cursor[0] += 1
                delay = start + send_at - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                t0 = time.monotonic()
                try:
                    status, _ = _post(conn, path, payload)
                except (http.client.HTTPException, OSError):
                    conn.close()
                    conn = _connect(url)
                    status = 599
                elapsed = time.monotonic() - t0
                with queue_lock:
                    if status == 200:
                        latencies.append(elapsed)
                    else:
                        errors[0] += 1
        finally:
            conn.close()

    threads = [
        threading.Thread(target=worker, name=f"loadtest-{i}", daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - start
    latencies.sort()
    return {
        "requests": len(schedule),
        "completed": len(latencies),
        "errors": errors[0],
        "wall_s": round(wall, 3),
        "offered_peak_rps": peak_rps,
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "throughput_rps": round(len(latencies) / wall, 1) if wall > 0 else 0.0,
    }


def run_closed_loop(
    url: str, duration_s: float, clients: int, seed: int
) -> float:
    """Closed-loop hammer: returns completed requests per second."""
    stop_at = time.monotonic() + duration_s
    counts: List[int] = []
    lock = threading.Lock()

    def worker(worker_seed: int) -> None:
        rng = random.Random(worker_seed)
        conn = _connect(url)
        n = 0
        try:
            while time.monotonic() < stop_at:
                try:
                    status, _ = _post(
                        conn, "/v1/query", make_point_query(rng, fresh=True)
                    )
                except (http.client.HTTPException, OSError):
                    conn.close()
                    conn = _connect(url)
                    continue
                if status == 200:
                    n += 1
        finally:
            conn.close()
            with lock:
                counts.append(n)

    threads = [
        threading.Thread(target=worker, args=(seed + i,), daemon=True)
        for i in range(clients)
    ]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - start
    return sum(counts) / wall if wall > 0 else 0.0


def fetch_stats(url: str) -> Dict:
    conn = _connect(url)
    try:
        return _get(conn, "/stats")
    finally:
        conn.close()


def run_loadtest(
    url: Optional[str] = None,
    duration_s: float = 8.0,
    clients: int = 8,
    peak_rps: float = 150.0,
    seed: int = 7,
    window_ms: float = 2.0,
    ab: bool = True,
) -> Dict:
    """The full harness; returns the report dict.

    With ``url=None`` the server is booted in-process (self-host); the
    A/B phase only runs self-hosted (it needs a batching-disabled twin).
    """
    report: Dict = {
        "duration_s": duration_s,
        "clients": clients,
        "window_ms": window_ms,
    }
    own_server = url is None
    handle = None
    if own_server:
        from repro.serve import serve_in_thread

        handle = serve_in_thread(window_s=window_ms / 1000.0)
        url = handle.url
    try:
        report["diurnal"] = run_diurnal_phase(
            url, duration_s, clients, peak_rps, seed
        )
        stats = fetch_stats(url)
        report["batching"] = stats["batching"]
        report["tech_context"] = stats["tech_context"]
        report["coalescing_rate"] = stats["batching"]["coalescing_rate"]
        report["cache_hit_rate"] = stats["tech_context"]["hit_rate"]
    finally:
        if handle is not None:
            handle.stop()
    if ab and own_server:
        # The A/B contrast needs enough closed-loop concurrency for
        # batches to actually form; the paced diurnal client count is a
        # latency story, not a throughput one.
        report["ab"] = run_ab_phase(
            duration_s=min(duration_s / 2.0, 5.0),
            clients=max(clients, 16),
            seed=seed,
            window_ms=window_ms,
        )
    return report


def run_ab_phase(
    duration_s: float, clients: int, seed: int, window_ms: float
) -> Dict:
    """Throughput with micro-batching on vs off (fresh server each)."""
    from repro.serve import serve_in_thread

    results = {}
    for label, enabled in (("batched", True), ("unbatched", False)):
        handle = serve_in_thread(
            window_s=window_ms / 1000.0, batching_enabled=enabled
        )
        try:
            results[label] = run_closed_loop(
                handle.url, duration_s, clients, seed
            )
            if enabled:
                results["batched_stats"] = handle.stats()["batching"]
        finally:
            handle.stop()
    off = results["unbatched"]
    return {
        "batched_rps": round(results["batched"], 1),
        "unbatched_rps": round(off, 1),
        "speedup": round(results["batched"] / off, 2) if off > 0 else 0.0,
        "batched_coalescing_rate": results["batched_stats"]["coalescing_rate"],
        "batched_mean_batch": results["batched_stats"]["mean_batch_size"],
    }


def run_overload_phase(
    duration_s: float = 6.0,
    seed: int = 7,
    max_inflight: int = 8,
    overload_factor: float = 5.0,
    deadline_ms: float = 2000.0,
    window_ms: float = 2.0,
) -> Dict:
    """Drive a small-capacity server past its admission limit.

    Boots a server with a deliberately tiny gate (``max_inflight``) and
    hammers it closed-loop with ``max_inflight * overload_factor``
    clients, then asserts the shed-not-queued contract:

    * excess load is answered ``503 overloaded`` with ``Retry-After``
      (never silently queued, never a torn response);
    * admitted requests keep a bounded p99 — the queue in front of them
      is capped, so overload cannot stretch their latency unboundedly;
    * client-side and server-side accounting reconcile: every request
      the clients sent is either in the server's ``admitted`` or its
      ``shed_overload`` counter.

    Returns a report with a ``checks`` list and an overall ``ok``.
    """
    from repro.serve import serve_in_thread

    clients = max(2, int(max_inflight * overload_factor))
    handle = serve_in_thread(
        window_s=window_ms / 1000.0,
        max_inflight=max_inflight,
        max_queue=max_inflight * 4,
        default_deadline_ms=deadline_ms,
        drain_timeout_s=5.0,
    )
    lock = threading.Lock()
    tallies = {
        "sent": 0,
        "ok": 0,
        "shed_overload": 0,
        "shed_deadline": 0,
        "other_status": 0,
        "torn": 0,
        "missing_retry_after": 0,
        "conn_errors": 0,
    }
    ok_latencies: List[float] = []
    stop_at = time.monotonic() + duration_s

    def worker(worker_seed: int) -> None:
        rng = random.Random(worker_seed)
        conn = _connect(handle.url)
        try:
            while time.monotonic() < stop_at:
                payload = make_point_query(rng, fresh=True)
                t0 = time.monotonic()
                try:
                    status, headers, body = _post_full(
                        conn, "/v1/query", payload
                    )
                except (ValueError, http.client.HTTPException, OSError) as exc:
                    # ValueError = unparseable JSON = a torn response;
                    # transport errors just mean reconnect and retry.
                    conn.close()
                    conn = _connect(handle.url)
                    with lock:
                        if isinstance(exc, ValueError):
                            tallies["sent"] += 1
                            tallies["torn"] += 1
                        else:
                            tallies["conn_errors"] += 1
                    continue
                elapsed = time.monotonic() - t0
                error = body.get("error", {}) if isinstance(body, dict) else {}
                code = error.get("code")
                with lock:
                    tallies["sent"] += 1
                    if status == 200:
                        tallies["ok"] += 1
                        ok_latencies.append(elapsed)
                    elif status == 503 and code == "overloaded":
                        tallies["shed_overload"] += 1
                        if "retry-after" not in headers:
                            tallies["missing_retry_after"] += 1
                    elif status == 408 and code == "deadline_exceeded":
                        tallies["shed_deadline"] += 1
                    else:
                        tallies["other_status"] += 1
        finally:
            conn.close()

    threads = [
        threading.Thread(
            target=worker, args=(seed + i,), name=f"overload-{i}", daemon=True
        )
        for i in range(clients)
    ]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - start
    try:
        stats = handle.stats()
    finally:
        stop_outcome = handle.stop()
    overload = stats["overload"]
    ok_latencies.sort()
    p99_ms = round(_percentile(ok_latencies, 0.99) * 1e3, 3)
    # The budget an admitted request can legitimately spend is its
    # deadline; give 50% margin for scheduling noise before calling the
    # tail unbounded.
    p99_bound_ms = deadline_ms * 1.5
    server_handled = overload["admitted"] + overload["shed_overload"]
    # Requests that died on the transport (conn_errors) may or may not
    # have reached the gate, so accounting tolerates that much skew.
    skew = abs(server_handled - tallies["sent"])
    checks = [
        {
            "name": "shed_not_queued",
            "ok": tallies["shed_overload"] > 0
            and overload["shed_overload"] > 0,
            "detail": f"client 503s={tallies['shed_overload']}, "
            f"server shed={overload['shed_overload']}",
        },
        {
            "name": "retry_after_on_every_503",
            "ok": tallies["missing_retry_after"] == 0,
            "detail": f"missing={tallies['missing_retry_after']}",
        },
        {
            "name": "no_torn_responses",
            "ok": tallies["torn"] == 0,
            "detail": f"torn={tallies['torn']}",
        },
        {
            "name": "admitted_p99_bounded",
            "ok": tallies["ok"] > 0 and p99_ms <= p99_bound_ms,
            "detail": f"p99={p99_ms} ms, bound={p99_bound_ms} ms, "
            f"admitted_ok={tallies['ok']}",
        },
        {
            "name": "accounting_reconciles",
            "ok": skew <= tallies["conn_errors"],
            "detail": f"client sent={tallies['sent']}, server "
            f"admitted+shed={server_handled}, conn_errors="
            f"{tallies['conn_errors']}",
        },
        {
            "name": "unexpected_statuses",
            "ok": tallies["other_status"] == 0,
            "detail": f"other={tallies['other_status']}",
        },
    ]
    return {
        "clients": clients,
        "max_inflight": max_inflight,
        "overload_factor": round(clients / max_inflight, 1),
        "deadline_ms": deadline_ms,
        "wall_s": round(wall, 3),
        "tallies": tallies,
        "admitted_p99_ms": p99_ms,
        "server_overload": overload,
        "stop_outcome": stop_outcome,
        "checks": checks,
        "ok": all(check["ok"] for check in checks),
    }


def append_trajectory(path: Path, report: Dict) -> None:
    """Append this run to the ``BENCH_serve.json`` trajectory file."""
    if path.exists():
        data = json.loads(path.read_text())
    else:
        data = {"bench": "serve_loadtest", "history": []}
    entry = {
        "p50_ms": report["diurnal"]["p50_ms"],
        "p99_ms": report["diurnal"]["p99_ms"],
        "throughput_rps": report["diurnal"]["throughput_rps"],
        "coalescing_rate": round(report["coalescing_rate"], 3),
        "cache_hit_rate": round(report["cache_hit_rate"], 3),
    }
    if "ab" in report:
        entry["ab_speedup"] = report["ab"]["speedup"]
        entry["batched_rps"] = report["ab"]["batched_rps"]
        entry["unbatched_rps"] = report["ab"]["unbatched_rps"]
    data["history"].append(entry)
    path.write_text(json.dumps(data, indent=2) + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Replay a diurnal synthetic query stream against cryowire serve."
    )
    parser.add_argument(
        "--url",
        default=None,
        help="server base URL (e.g. http://127.0.0.1:8077); omit with --self-host",
    )
    parser.add_argument(
        "--self-host",
        action="store_true",
        help="boot the server in-process (required for the A/B phase)",
    )
    parser.add_argument("--duration", type=float, default=8.0, metavar="S")
    parser.add_argument("--clients", type=int, default=8, metavar="N")
    parser.add_argument(
        "--peak-rps", type=float, default=150.0, metavar="RPS",
        help="diurnal peak request rate (default 150)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--window-ms", type=float, default=2.0, metavar="MS",
        help="self-hosted server's coalescing window (default 2.0)",
    )
    parser.add_argument(
        "--no-ab", action="store_true", help="skip the A/B throughput phase"
    )
    parser.add_argument(
        "--bench-file", default=None, metavar="PATH",
        help="append the run to this trajectory JSON (BENCH_serve.json idiom)",
    )
    parser.add_argument(
        "--require-coalescing",
        action="store_true",
        help="exit non-zero unless the micro-batcher coalesced at least "
        "one batch (CI tripwire)",
    )
    parser.add_argument(
        "--overload",
        action="store_true",
        help="also run the overload phase (self-hosts its own "
        "small-capacity server; exits non-zero if any check fails)",
    )
    parser.add_argument(
        "--overload-only",
        action="store_true",
        help="run only the overload phase (skips diurnal and A/B)",
    )
    parser.add_argument(
        "--overload-inflight", type=int, default=8, metavar="N",
        help="overload-phase server admission cap (default 8)",
    )
    parser.add_argument(
        "--overload-factor", type=float, default=5.0, metavar="X",
        help="overload-phase client count as a multiple of the "
        "admission cap (default 5.0)",
    )
    args = parser.parse_args(argv)
    if args.overload_only:
        args.overload = True
    if not args.overload_only:
        if args.url is None and not args.self_host:
            parser.error("pass --url or --self-host")
        if args.url is not None and args.self_host:
            parser.error("--url and --self-host are mutually exclusive")
    report: Dict = {}
    if not args.overload_only:
        report = run_loadtest(
            url=args.url,
            duration_s=args.duration,
            clients=args.clients,
            peak_rps=args.peak_rps,
            seed=args.seed,
            window_ms=args.window_ms,
            ab=not args.no_ab,
        )
    overload_failed = False
    if args.overload:
        overload_report = run_overload_phase(
            duration_s=min(args.duration, 10.0),
            seed=args.seed,
            max_inflight=args.overload_inflight,
            overload_factor=args.overload_factor,
            window_ms=args.window_ms,
        )
        report["overload"] = overload_report
        overload_failed = not overload_report["ok"]
    print(json.dumps(report, indent=2))
    if args.bench_file and "diurnal" in report:
        append_trajectory(Path(args.bench_file), report)
        print(f"appended trajectory to {args.bench_file}", file=sys.stderr)
    if (
        args.require_coalescing
        and "coalescing_rate" in report
        and report["coalescing_rate"] <= 0.0
    ):
        print(
            "FAIL: micro-batcher never coalesced "
            f"(rate {report['coalescing_rate']})",
            file=sys.stderr,
        )
        return 1
    if overload_failed:
        for check in report["overload"]["checks"]:
            if not check["ok"]:
                print(
                    f"FAIL: overload check {check['name']}: {check['detail']}",
                    file=sys.stderr,
                )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
