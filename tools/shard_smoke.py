#!/usr/bin/env python
"""Shard-orchestration smoke: chaos kill + sharded/unsharded equivalence.

Two checks, both asserted against a fault-free unsharded reference run
(fresh caches everywhere, so nothing is served from a previous stage):

1. **Chaos requeue.** A seeded fault plan kills one of three worker
   groups mid-sweep (``shard.group.kill.<k>``, where ``<k>`` is the
   shard the first sweep item hashes to). The run must complete via
   dead-shard requeue with every experiment result *byte-identical*
   (canonical-JSON compare) to the reference, the merged manifest's
   status totals equal to the reference's (wall-clock fields aside),
   and a ``--resume`` from the surviving shard manifests alone must
   re-run only the items the dead shard lost.
2. **2-shard equivalence.** A plain 2-shard run of the same sweep also
   matches the reference byte-for-byte.

Usage: ``python tools/shard_smoke.py [--experiments id,id,...]`` —
exits non-zero with a diagnostic on the first violated invariant. Run
by CI next to the chaos suites.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path

from repro.experiments.engine import ExecutionEngine, SKIPPED
from repro.experiments.shard import (
    ShardCoordinator,
    read_shard_manifests,
    shard_of,
)
from repro.util import faults
from repro.util.faults import FaultPlan, FaultSpec

#: Fast, kwargs-free experiments that exercise distinct model stacks.
DEFAULT_EXPERIMENTS = (
    "fig20",
    "table1",
    "ablation_cryobus",
    "ablation_exposure",
    "ablation_interleaving",
    "ablation_superpipeline",
)


def _fail(message: str) -> "None":
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def _canonical(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def _counting_totals(manifest) -> dict:
    totals = manifest.to_dict()["totals"]
    totals.pop("compute_s")  # wall clock legitimately differs
    return totals


def _check_results_identical(outcome, reference, label: str) -> None:
    if set(outcome.results) != set(reference.results):
        _fail(
            f"{label}: result set mismatch "
            f"({sorted(outcome.results)} != {sorted(reference.results)})"
        )
    for eid in reference.results:
        if _canonical(outcome.results[eid]) != _canonical(reference.results[eid]):
            _fail(f"{label}: result for {eid} is not byte-identical")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--experiments",
        default=",".join(DEFAULT_EXPERIMENTS),
        help="comma-separated experiment ids to sweep",
    )
    args = parser.parse_args(argv)
    ids = [eid for eid in args.experiments.split(",") if eid]

    workdir = Path(tempfile.mkdtemp(prefix="cryowire-shard-smoke-"))
    try:
        # Fault-free unsharded reference.
        reference = ExecutionEngine(cache_dir=workdir / "ref").run(ids)
        print(f"reference: {len(reference.results)} results")

        # -- check 1: seeded kill of 1 of 3 groups, requeue completes --
        victim = shard_of(ids[0], None, 3)
        lost = sorted(eid for eid in ids if shard_of(eid, None, 3) == victim)
        faults.install(
            FaultPlan(
                specs=(
                    FaultSpec(
                        f"shard.group.kill.{victim}", faults.FATAL, max_fires=1
                    ),
                ),
                seed=7,
            )
        )
        try:
            chaos_coord = ShardCoordinator(3, cache_dir=workdir / "chaos")
            chaos = chaos_coord.run(ids)
        finally:
            faults.clear()
        if chaos_coord.total_requeued < 1:
            _fail("chaos run killed a shard but requeued nothing")
        _check_results_identical(chaos, reference, "chaos requeue")
        if _counting_totals(chaos.manifest) != _counting_totals(
            reference.manifest
        ):
            _fail(
                "chaos totals diverge: "
                f"{_counting_totals(chaos.manifest)} != "
                f"{_counting_totals(reference.manifest)}"
            )
        print(
            f"chaos requeue: shard {victim} killed, "
            f"{chaos_coord.total_requeued} item(s) requeued, totals match"
        )

        # -- check 1b: resume from surviving shard manifests only --
        # Same kill, but with requeue disabled the dead shard's items
        # stay incomplete — then the resume (with the dead machine's
        # manifest gone too) must re-run exactly those and nothing else.
        faults.install(
            FaultPlan(
                specs=(
                    FaultSpec(
                        f"shard.group.kill.{victim}", faults.FATAL, max_fires=1
                    ),
                ),
                seed=7,
            )
        )
        try:
            wreck_coord = ShardCoordinator(
                3, cache_dir=workdir / "wreck", requeue=False
            )
            wreck_coord.run(ids, keep_going=True)
        finally:
            faults.clear()
        _, unreadable = read_shard_manifests(wreck_coord.shards_dir)
        if unreadable:
            _fail(f"{unreadable} unreadable shard manifest(s) after wreck run")
        (wreck_coord.shards_dir / f"shard-{victim}.json").unlink()
        resumed = ShardCoordinator(
            3, cache_dir=workdir / "wreck", use_cache=False
        ).run(ids, resume=True)
        rerun = sorted(
            r.experiment_id
            for r in resumed.manifest.records
            if r.status != SKIPPED
        )
        if rerun != lost:
            _fail(f"resume re-ran {rerun}, expected exactly the lost {lost}")
        for eid in rerun:  # the re-run results themselves must match too
            if _canonical(resumed.results[eid]) != _canonical(
                reference.results[eid]
            ):
                _fail(f"resume: re-run result for {eid} is not byte-identical")
        print(f"resume: re-ran only the lost {rerun}")

        # -- check 2: plain 2-shard equivalence --
        sharded = ShardCoordinator(2, cache_dir=workdir / "eq").run(ids)
        _check_results_identical(sharded, reference, "2-shard equivalence")
        if _counting_totals(sharded.manifest) != _counting_totals(
            reference.manifest
        ):
            _fail("2-shard totals diverge from the unsharded reference")
        if sharded.manifest.shards != 2:
            _fail("2-shard manifest does not record shards=2")
        print("2-shard equivalence: results byte-identical, totals match")

        print("shard smoke OK")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
